//! The program abstraction: what a simulated thread does with its CPU time.
//!
//! A [`Program`] is a resumable state machine. Each time its previous
//! directive completes, the scheduler calls [`Program::next`] and receives
//! the next [`Directive`]. Programs never see the scheduler's internals;
//! they interact with the world through the [`ProgramCtx`] (allocating and
//! setting conditions — out of which `speedbal-apps` builds barriers, locks
//! and collectives).

use crate::cond::{CondId, CondTable};
use crate::task::TaskId;
use speedbal_machine::CoreId;
use speedbal_sim::{SimDuration, SimRng, SimTime};
use speedbal_trace::{TraceBuffer, TraceEvent};

/// What a thread asks the scheduler to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Directive {
    /// Execute on the CPU for this long *at nominal speed 1.0*. On a core of
    /// speed `s` (or with NUMA/SMT factors) the wall time differs.
    Compute(SimDuration),
    /// Burn CPU polling until the condition is set (busy-wait barrier/lock).
    SpinUntil(CondId),
    /// Call `sched_yield` in a loop until the condition is set. The task
    /// stays on the run queue — the crucial property that makes Linux count
    /// it as load (paper §3).
    YieldUntil(CondId),
    /// Sleep (off the run queue) until the condition is set (futex-style
    /// barrier, or the paper's `usleep(1)`-classified implementations).
    BlockUntil(CondId),
    /// Spin for at most `spin`, then block on the condition — Intel
    /// OpenMP's `KMP_BLOCKTIME` behaviour (default 200 ms; `infinite`
    /// becomes [`Directive::SpinUntil`]).
    SpinThenBlock { cond: CondId, spin: SimDuration },
    /// Sleep for a fixed duration (rounded up to timer granularity).
    SleepFor(SimDuration),
    /// Terminate the thread.
    Exit,
}

/// Environment a program can touch while deciding its next step.
pub struct ProgramCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// The task being resumed.
    pub task: TaskId,
    /// The core the task occupies while making this decision.
    pub core: CoreId,
    pub(crate) conds: &'a mut CondTable,
    /// Per-task deterministic RNG stream.
    pub rng: &'a mut SimRng,
    /// Event sink (None while tracing is off or in standalone unit tests).
    pub(crate) trace: Option<&'a mut TraceBuffer>,
}

impl<'a> ProgramCtx<'a> {
    /// Builds a context over a caller-owned condition table — used by unit
    /// tests of program building blocks (barriers, locks) outside a full
    /// simulation. Tracing is off and the core reads as 0.
    pub fn new(
        now: SimTime,
        task: TaskId,
        conds: &'a mut CondTable,
        rng: &'a mut SimRng,
    ) -> ProgramCtx<'a> {
        ProgramCtx {
            now,
            task,
            core: CoreId(0),
            conds,
            rng,
            trace: None,
        }
    }

    /// Records a trace event stamped with the current time and core; no-op
    /// when tracing is off. Lets apps contribute domain-level events
    /// (barrier arrivals/releases) to the system trace.
    pub fn trace_event(&mut self, event: TraceEvent) {
        if let Some(buf) = self.trace.as_deref_mut() {
            buf.record(self.now, self.core, event);
        }
    }

    /// Allocates a fresh one-shot condition.
    pub fn alloc_cond(&mut self) -> CondId {
        self.conds.alloc()
    }

    /// Sets a condition, releasing every waiter after this program step.
    pub fn set_cond(&mut self, c: CondId) {
        self.conds.set(c);
    }

    /// True iff the condition has been set.
    pub fn cond_is_set(&self, c: CondId) -> bool {
        self.conds.is_set(c)
    }
}

/// A resumable thread body.
pub trait Program {
    /// Called when the previous directive completes (and once at first
    /// dispatch); returns what to do next.
    fn next(&mut self, ctx: &mut ProgramCtx<'_>) -> Directive;

    /// Diagnostic label.
    fn label(&self) -> String {
        "task".to_string()
    }
}

/// A program built from a closure; convenient for tests.
pub struct FnProgram<F: FnMut(&mut ProgramCtx<'_>) -> Directive>(pub F);

impl<F: FnMut(&mut ProgramCtx<'_>) -> Directive> Program for FnProgram<F> {
    fn next(&mut self, ctx: &mut ProgramCtx<'_>) -> Directive {
        (self.0)(ctx)
    }
}

/// A program that computes a fixed list of directives in order, then exits.
/// Useful for unit tests and microbenchmarks.
pub struct ScriptProgram {
    steps: std::vec::IntoIter<Directive>,
}

impl ScriptProgram {
    pub fn new(steps: Vec<Directive>) -> Self {
        ScriptProgram {
            steps: steps.into_iter(),
        }
    }
}

impl Program for ScriptProgram {
    fn next(&mut self, _ctx: &mut ProgramCtx<'_>) -> Directive {
        self.steps.next().unwrap_or(Directive::Exit)
    }

    fn label(&self) -> String {
        "script".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_program_replays_then_exits() {
        let mut conds = CondTable::new();
        let mut rng = SimRng::new(0);
        let mut ctx = ProgramCtx::new(SimTime::ZERO, TaskId(0), &mut conds, &mut rng);
        let mut p = ScriptProgram::new(vec![
            Directive::Compute(SimDuration::from_millis(1)),
            Directive::SleepFor(SimDuration::from_millis(2)),
        ]);
        assert_eq!(
            p.next(&mut ctx),
            Directive::Compute(SimDuration::from_millis(1))
        );
        assert_eq!(
            p.next(&mut ctx),
            Directive::SleepFor(SimDuration::from_millis(2))
        );
        assert_eq!(p.next(&mut ctx), Directive::Exit);
        assert_eq!(p.next(&mut ctx), Directive::Exit);
    }

    #[test]
    fn ctx_cond_roundtrip() {
        let mut conds = CondTable::new();
        let mut rng = SimRng::new(0);
        let mut ctx = ProgramCtx::new(SimTime::ZERO, TaskId(3), &mut conds, &mut rng);
        let c = ctx.alloc_cond();
        assert!(!ctx.cond_is_set(c));
        ctx.set_cond(c);
        assert!(ctx.cond_is_set(c));
    }

    #[test]
    fn fn_program_wraps_closures() {
        let mut conds = CondTable::new();
        let mut rng = SimRng::new(0);
        let mut ctx = ProgramCtx::new(SimTime::ZERO, TaskId(0), &mut conds, &mut rng);
        let calls = std::cell::Cell::new(0);
        let mut p = FnProgram(|_ctx: &mut ProgramCtx<'_>| {
            calls.set(calls.get() + 1);
            Directive::Exit
        });
        assert_eq!(p.next(&mut ctx), Directive::Exit);
        assert_eq!(calls.get(), 1);
    }
}
