//! Per-core fair scheduling and the simulated multicore system.
//!
//! This crate models the layer the paper's balancers sit on top of: Linux
//! 2.6.28's two-level scheduling. The **first level** — per-core run queues
//! managed by a CFS-like fair scheduler ("scheduling in time") — lives here.
//! The **second level** — load balancing across cores ("scheduling in
//! space") — is pluggable through the [`Balancer`] trait, implemented by
//! `speedbal-core` (speed balancing) and `speedbal-balancers` (Linux
//! queue-length balancing, DWRR, FreeBSD-ULE, static pinning).
//!
//! Applications are [`Program`] state machines that alternate computation
//! with synchronization [`Directive`]s (spin / yield / block on a condition,
//! timed sleep, exit). The barrier implementations the paper studies —
//! polling, `sched_yield` loops, `sleep`, and Intel OpenMP's
//! spin-then-sleep (`KMP_BLOCKTIME`) — are built from these directives in
//! `speedbal-apps`.
//!
//! The whole machine is advanced by a deterministic discrete-event loop in
//! [`System`]; identical seeds produce identical schedules.

// Hot-path crate: performance-relevant clippy lints are hard errors.
#![deny(clippy::perf)]

pub mod balancer;
pub mod cond;
pub mod config;
pub mod program;
pub mod rq;
pub mod system;
pub mod task;

pub use balancer::{Balancer, NullBalancer};
pub use cond::CondId;
pub use config::SchedConfig;
pub use program::{Directive, FnProgram, Program, ProgramCtx, ScriptProgram};
pub use system::{profile_timestamp, GroupId, MigrationRecord, SpawnSpec, StepProfile, System};
pub use task::{TaskId, TaskState};

// Re-exported so balancers and apps can name trace types without adding a
// direct `speedbal-trace` dependency.
pub use speedbal_trace as trace;
pub use speedbal_trace::{
    ActivationOutcome, MigrationReason, RequestDropReason, TraceBuffer, TraceConfig, TraceEvent,
};
