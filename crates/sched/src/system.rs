//! The simulated multicore system: event loop, per-core dispatch, wakeups
//! and migration.
//!
//! # Model
//!
//! Each core runs a CFS-like fair scheduler over its private run queue
//! (see [`crate::rq`]). Tasks execute [`Program`]s that alternate
//! computation with synchronization directives. The system is advanced by a
//! deterministic discrete-event loop; the only event kinds are:
//!
//! * **core events** — the running task on a core reaches a boundary
//!   (slice expiry, computation complete, spin timeout, yield step);
//! * **wake events** — a timed sleep expires;
//! * **balancer timers** — a [`Balancer`] asked to be called back.
//!
//! Each core owns an event-queue *slot* holding its at-most-one pending
//! core event (see [`speedbal_sim::EventQueue::alloc_slot`]). Anything that
//! changes a core's situation out-of-band (a wakeup, a migration, a
//! condition being set, an SMT sibling changing state) simply *reschedules*
//! the core: re-arms the slot with a zero-delay core event — cancelling any
//! armed boundary event in place — which re-accounts the in-flight task and
//! re-dispatches. Popped core events are therefore always live; stale
//! entries never reach the handler.
//!
//! # Accounting fidelity
//!
//! `exec_total` advances for every nanosecond a task occupies a CPU —
//! including busy-waiting and `sched_yield` loops — exactly like
//! utime+stime in `/proc`, because that is what the paper's user-level
//! balancer measures. Blocked time does not count, which is how sleeping at
//! a barrier "is reflected by increases in the speed of the co-runners".

mod invariants;

use crate::balancer::Balancer;
use crate::cond::{CondId, CondTable};
use crate::config::SchedConfig;
use crate::program::{Directive, Program, ProgramCtx};
use crate::rq::RunQueue;
use crate::task::{Activity, Task, TaskId, TaskState, TaskTable};
use speedbal_machine::{CoreId, CostModel, FreqSchedule, Topology};
use speedbal_sim::{EventQueue, OrderingPolicy, SimDuration, SimRng, SimTime, SlotId};
use speedbal_trace::{MigrationReason, TraceBuffer, TraceConfig, TraceEvent};

/// Handle to a task group (one application / competing workload).
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct GroupId(pub usize);

/// Parameters for spawning a task.
pub struct SpawnSpec {
    pub program: Box<dyn Program>,
    pub name: String,
    pub group: GroupId,
    /// Resident set size for the migration cost model.
    pub rss_bytes: u64,
    /// Memory-bandwidth intensity in [0, 1] (see `Task::mem_intensity`).
    pub mem_intensity: f64,
    /// CFS load weight (1024 = nice 0).
    pub weight: u32,
    /// Hard single-core affinity installed at spawn.
    pub pinned: Option<CoreId>,
    /// `taskset`-style mask restricting placement (used to run "16 threads
    /// on N cores"). `None` = whole machine.
    pub allowed: Option<Vec<CoreId>>,
}

impl SpawnSpec {
    /// A plain unpinned task with default weight and no memory footprint.
    pub fn new(program: Box<dyn Program>, name: impl Into<String>, group: GroupId) -> Self {
        SpawnSpec {
            program,
            name: name.into(),
            group,
            rss_bytes: 0,
            mem_intensity: 0.0,
            weight: 1024,
            pinned: None,
            allowed: None,
        }
    }

    pub fn rss(mut self, bytes: u64) -> Self {
        self.rss_bytes = bytes;
        self
    }

    /// Sets the memory-bandwidth intensity (clamped to [0, 1]).
    pub fn mem(mut self, intensity: f64) -> Self {
        self.mem_intensity = intensity.clamp(0.0, 1.0);
        self
    }

    pub fn pin(mut self, core: CoreId) -> Self {
        self.pinned = Some(core);
        self
    }

    pub fn allow(mut self, cores: Vec<CoreId>) -> Self {
        self.allowed = Some(cores);
        self
    }

    pub fn weight(mut self, w: u32) -> Self {
        self.weight = w;
        self
    }
}

/// One recorded migration (requires [`System::enable_migration_log`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MigrationRecord {
    pub time: SimTime,
    pub task: TaskId,
    pub from: CoreId,
    pub to: CoreId,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// The running task on `core` reached a boundary. Armed through the
    /// core's event-queue slot, so a popped core event is always live.
    Core {
        core: usize,
    },
    Wake {
        task: TaskId,
        gen: u64,
    },
    BalancerTimer {
        key: u64,
    },
    /// Tracing-only periodic speed sampler. Its handler reads scheduler
    /// state but never mutates it, so arming it cannot perturb a run.
    TraceSample,
    /// The pre-generated frequency schedule switches `core` to its next
    /// clock ratio. Only armed when a non-identity schedule is installed,
    /// so runs without one see a bit-identical event stream.
    FreqStep {
        core: usize,
    },
}

struct Core {
    queue: RunQueue,
    current: Option<TaskId>,
    /// The core's armed-event slot: at most one pending core event, with
    /// in-place cancellation instead of post-and-invalidate.
    slot: SlotId,
    /// Compute rate sampled at dispatch (speed × SMT × NUMA factors).
    current_rate: f64,
    busy_total: SimDuration,
    nr_switches: u64,
    /// Stable occupied/idle state, flipped only when a dispatch cycle ends
    /// with the opposite occupancy (drives SMT sibling notifications).
    busy_flag: bool,
}

impl Core {
    fn new(slot: SlotId) -> Self {
        Core {
            queue: RunQueue::new(),
            current: None,
            slot,
            current_rate: 1.0,
            busy_total: SimDuration::ZERO,
            nr_switches: 0,
            busy_flag: false,
        }
    }

    /// Linux `nr_running`: queued plus current.
    fn nr_running(&self) -> usize {
        self.queue.len() + usize::from(self.current.is_some())
    }
}

#[derive(Debug, Clone, Default)]
struct Group {
    total: usize,
    live: usize,
    finished_at: Option<SimTime>,
}

/// The simulated machine: topology + per-core schedulers + tasks + a
/// pluggable balancer, advanced by a deterministic event loop.
pub struct System {
    topo: Topology,
    cfg: SchedConfig,
    cost: CostModel,
    tasks: TaskTable,
    cores: Vec<Core>,
    conds: CondTable,
    events: EventQueue<Ev>,
    balancer: Option<Box<dyn Balancer>>,
    rng: SimRng,
    task_rngs: Vec<Option<SimRng>>,
    groups: Vec<Group>,
    total_migrations: u64,
    events_processed: u64,
    /// Deferred balancer notifications (collected while the balancer is
    /// detached during system mutation, drained after each event).
    pending_desched: Vec<(TaskId, CoreId, SimDuration)>,
    /// Cached [`Balancer::wants_desched_events`]: deschedules happen on
    /// nearly every event, so when no balancer listens the notifications
    /// are never even queued.
    desched_events_wanted: bool,
    pending_exits: Vec<TaskId>,
    /// Scratch buffers swapped with the pending queues on every flush so
    /// the steady-state event loop never reallocates them.
    scratch_desched: Vec<(TaskId, CoreId, SimDuration)>,
    scratch_exits: Vec<TaskId>,
    /// Reusable buffer for a drained condition's waiters.
    scratch_waiters: Vec<TaskId>,
    /// Per-core member lists: every non-exited task whose `core` field
    /// points at the core (running, queued, blocked or suspended), kept in
    /// `TaskId` order. Incrementally maintained so balancers read
    /// O(members) per core instead of scanning the whole task table.
    members: Vec<Vec<TaskId>>,
    /// `mem_intensity` of the task currently on each CPU (0.0 when idle).
    /// Dense, so the bandwidth-demand scan is a contiguous sum — and
    /// bit-identical to walking only the occupied cores, since adding an
    /// exact 0.0 never changes a finite sum.
    current_mi: Vec<f64>,
    /// Cached topology lists (the `Topology` getters allocate per call).
    bw_domain_cores: Vec<Vec<CoreId>>,
    /// `Some(lo)` when `bw_domain_cores[d]` is exactly the contiguous run
    /// `lo..lo+len` in order, letting the memo hit check below compare a
    /// flat `current_mi` slice instead of gathering core by core.
    bw_domain_contig: Vec<Option<usize>>,
    /// Per-core memo for [`System::bandwidth_factor`], keyed by the raw
    /// bits of its inputs (see there).
    bw_cache: Vec<BwCache>,
    smt_sibs: Vec<Vec<CoreId>>,
    /// Memoized [`SchedConfig::slice_for`] by `nr_running` (one u64
    /// division per boundary arm otherwise; the config is immutable).
    slice_cache: Vec<SimDuration>,
    /// Structured event trace (None = tracing disabled; every hook is a
    /// single branch on this option).
    trace: Option<Box<TraceBuffer>>,
    /// Attribution scratch: set by `*_with_reason` around a migration call
    /// so `migrate_task` can stamp the `Migrate` record.
    migration_reason: MigrationReason,
    /// Speed-sampler bookkeeping (tracing only).
    sampler_armed: bool,
    sampler_last: SimTime,
    sampler_exec: Vec<SimDuration>,
    sampler_busy: Vec<SimDuration>,
    /// Invariant-checker state (`None` = checks off; every hook is a single
    /// branch on this option, like tracing). See [`System::check_invariants`].
    check: Option<Box<invariants::CheckState>>,
    /// Installed frequency schedule plus the per-core current-ratio cache
    /// (`None` = homogeneous clocks; every hot-path read is one branch).
    freq: Option<Box<FreqState>>,
    /// When true (only inside [`System::step_profiled`]), `with_balancer`
    /// accumulates hook wall time into `balancer_ns`.
    profile_balancer: bool,
    balancer_ns: u64,
}

/// Wall-clock breakdown of the event loop accumulated by
/// [`System::step_profiled`]. All times are in [`profile_timestamp`]
/// units — the raw TSC on x86_64 (cheap enough to stamp four times per
/// step without drowning the signal), `Instant` nanoseconds elsewhere.
/// Consumers calibrate against wall clock over the whole run to convert
/// to nanoseconds. `balancer_ns` is a *subset* of the gross phase times
/// (the slices of handler and post-step work spent inside balancer
/// hooks), so the phases alone sum to the measured total.
#[derive(Debug, Default, Clone, Copy)]
pub struct StepProfile {
    /// Steps accumulated into this profile.
    pub steps: u64,
    /// Event-queue pop (wheel service: batch refills, cascades).
    pub pop_ns: u64,
    /// Core-event handling: deschedule accounting, program transitions,
    /// dispatch and boundary re-arm.
    pub core_ns: u64,
    /// Timed-wake handling (wake placement and enqueue).
    pub wake_ns: u64,
    /// Balancer-timer handling (gross; the hook itself is in
    /// `balancer_ns`).
    pub timer_ns: u64,
    /// Trace-sampler and frequency-step handling.
    pub other_ns: u64,
    /// Post-step condition drain plus balancer-notification flush.
    pub post_ns: u64,
    /// Time inside balancer hooks, wherever they fired (subset).
    pub balancer_ns: u64,
}

/// Raw timestamp for [`StepProfile`] phase attribution: the TSC on
/// x86_64 (a few ns per read, versus ~25 for `Instant::now`, which would
/// distort a sub-100ns hot path beyond recognition), `Instant`
/// nanoseconds elsewhere. Monotonic enough for deltas on any machine new
/// enough to run the simulator (constant_tsc).
#[inline]
pub fn profile_timestamp() -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: RDTSC is unprivileged and has no memory effects.
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        use std::sync::OnceLock;
        use std::time::Instant;
        static START: OnceLock<Instant> = OnceLock::new();
        START.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// Memo for [`System::bandwidth_factor`]: the last computed factor and
/// the raw bits of every input that produced it.
#[derive(Default, Clone)]
struct BwCache {
    valid: bool,
    /// `mem_intensity` bits of the dispatched task.
    own: u64,
    /// `current_mi` bits of each core in the bandwidth domain, in domain
    /// order.
    key: Vec<u64>,
    factor: f64,
}

/// Runtime state of an installed [`FreqSchedule`].
struct FreqState {
    schedule: FreqSchedule,
    /// Current ratio per core, updated at `Ev::FreqStep` instants so the
    /// dispatch path reads a cached f64 instead of searching the trace.
    ratios: Vec<f64>,
}

/// Bound on chained zero-time program transitions, to turn a program that
/// livelocks (e.g. infinitely returning `Compute(0)`) into a panic.
const MAX_CHAINED_TRANSITIONS: usize = 1024;

impl System {
    /// Builds a system over `topo` with the given balancer. `seed` fixes
    /// every random choice in the run.
    pub fn new(
        topo: Topology,
        cfg: SchedConfig,
        cost: CostModel,
        balancer: Box<dyn Balancer>,
        seed: u64,
    ) -> System {
        let n = topo.n_cores();
        let mut events = EventQueue::new();
        let cores: Vec<Core> = (0..n).map(|_| Core::new(events.alloc_slot())).collect();
        let n_domains = (0..n)
            .map(|c| topo.bw_domain_of(CoreId(c)))
            .max()
            .map_or(0, |d| d + 1);
        let bw_domain_cores: Vec<Vec<CoreId>> =
            (0..n_domains).map(|d| topo.cores_in_bw_domain(d)).collect();
        let bw_domain_contig = bw_domain_cores
            .iter()
            .map(|cs| {
                let lo = cs.first()?.0;
                cs.iter()
                    .enumerate()
                    .all(|(i, c)| c.0 == lo + i)
                    .then_some(lo)
            })
            .collect();
        let smt_sibs = (0..n).map(|c| topo.smt_siblings(CoreId(c))).collect();
        let mut sys = System {
            topo,
            cfg,
            cost,
            tasks: TaskTable::new(),
            cores,
            conds: CondTable::new(),
            events,
            balancer: None,
            rng: SimRng::new(seed),
            task_rngs: Vec::new(),
            groups: Vec::new(),
            total_migrations: 0,
            events_processed: 0,
            pending_desched: Vec::new(),
            desched_events_wanted: false,
            pending_exits: Vec::new(),
            scratch_desched: Vec::new(),
            scratch_exits: Vec::new(),
            scratch_waiters: Vec::new(),
            members: vec![Vec::new(); n],
            current_mi: vec![0.0; n],
            bw_domain_cores,
            bw_domain_contig,
            bw_cache: vec![BwCache::default(); n],
            smt_sibs,
            slice_cache: Vec::new(),
            trace: None,
            migration_reason: MigrationReason::Unspecified,
            sampler_armed: false,
            sampler_last: SimTime::ZERO,
            sampler_exec: Vec::new(),
            sampler_busy: Vec::new(),
            check: None,
            freq: None,
            profile_balancer: false,
            balancer_ns: 0,
        };
        if cfg!(feature = "strict-invariants") || invariants::env_enabled() {
            sys.enable_invariant_checks();
        }
        let mut bal = balancer;
        sys.desched_events_wanted = bal.wants_desched_events();
        bal.on_start(&mut sys);
        sys.balancer = Some(bal);
        sys
    }

    // ------------------------------------------------------------------
    // Queries (used by balancers, apps, metrics)
    // ------------------------------------------------------------------

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// Installs a pre-generated frequency schedule (see
    /// `speedbal_machine::freq`). Cores beyond the schedule's length run
    /// at ratio 1.0. An identity schedule (no core ever deviates from
    /// 1.0) is discarded entirely, so the event stream — and therefore
    /// every downstream result — stays bit-identical to a run that never
    /// called this method.
    ///
    /// Must be installed before the simulation advances past the
    /// schedule's first switching instant; installing at `t = 0` (the
    /// normal case, right after [`System::new`]) always satisfies that.
    pub fn set_freq_schedule(&mut self, schedule: FreqSchedule) {
        if schedule.is_identity() {
            self.freq = None;
            return;
        }
        let now = self.now();
        let n = self.cores.len();
        let ratios: Vec<f64> = (0..n).map(|c| schedule.ratio_at(c, now)).collect();
        for c in 0..n {
            if let Some(at) = schedule.next_change_after(c, now) {
                self.events.schedule(at, Ev::FreqStep { core: c });
            }
        }
        self.freq = Some(Box::new(FreqState { schedule, ratios }));
        // Ratios may differ from 1.0 right away; resample any core that
        // is already running a task.
        for c in 0..n {
            if self.cores[c].current.is_some() {
                self.reschedule(CoreId(c), now);
            }
        }
    }

    /// The installed frequency schedule, if any. Identity schedules are
    /// discarded by [`System::set_freq_schedule`], so `None` means every
    /// core runs at ratio 1.0 for the whole simulation.
    pub fn freq_schedule(&self) -> Option<&FreqSchedule> {
        self.freq.as_deref().map(|f| &f.schedule)
    }

    /// The core's current frequency ratio (1.0 without a schedule).
    pub fn freq_ratio(&self, core: CoreId) -> f64 {
        match &self.freq {
            Some(f) => f.ratios.get(core.0).copied().unwrap_or(1.0),
            None => 1.0,
        }
    }

    /// The core's effective capacity right now: its static topology speed
    /// times its current frequency ratio. This — not
    /// `topology().speed_of()` — is what capacity-aware balancers must
    /// weight by on machines with time-varying clocks.
    pub fn core_capacity(&self, core: CoreId) -> f64 {
        self.topo.speed_of(core) * self.freq_ratio(core)
    }

    /// Handles one `Ev::FreqStep`: refresh the core's cached ratio and,
    /// if the core is busy, reschedule it so the elapsed stretch is
    /// accounted at the old rate and the next dispatch samples the new
    /// one (exact piecewise integration). Then arm the next step.
    fn handle_freq_step(&mut self, c: usize, now: SimTime) {
        let Some(f) = self.freq.as_mut() else {
            return;
        };
        let ratio = f.schedule.ratio_at(c, now);
        let next = f.schedule.next_change_after(c, now);
        let changed = ratio != f.ratios[c];
        if changed {
            f.ratios[c] = ratio;
        }
        if let Some(at) = next {
            self.events.schedule(at, Ev::FreqStep { core: c });
        }
        if changed {
            if let Some(buf) = self.trace.as_mut() {
                buf.record(now, CoreId(c), TraceEvent::FreqStep { ratio });
            }
            if self.cores[c].current.is_some() {
                self.reschedule(CoreId(c), now);
            }
        }
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    pub fn config(&self) -> &SchedConfig {
        &self.cfg
    }

    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// The deterministic RNG shared by balancer policies.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Linux `nr_running` for a core: queued runnable tasks plus the one on
    /// the CPU. This is the "load" that queue-length balancing equalizes.
    pub fn queue_len(&self, core: CoreId) -> usize {
        self.cores[core.0].nr_running()
    }

    /// Tasks occupying the core's run queue (current first, then queued in
    /// vruntime order).
    pub fn tasks_on_core(&self, core: CoreId) -> Vec<TaskId> {
        self.tasks_on_core_iter(core).collect()
    }

    /// Allocation-free variant of [`System::tasks_on_core`].
    pub fn tasks_on_core_iter(&self, core: CoreId) -> impl Iterator<Item = TaskId> + '_ {
        let c = &self.cores[core.0];
        c.current.into_iter().chain(c.queue.iter())
    }

    /// Non-exited tasks assigned to `core` — running, queued, blocked or
    /// suspended, everything whose [`System::task_core`] is `core` — in
    /// `TaskId` order. Incrementally maintained, so reading a core's
    /// members is O(members) instead of a scan of the whole task table.
    pub fn tasks_assigned_to(&self, core: CoreId) -> &[TaskId] {
        &self.members[core.0]
    }

    /// The task currently on the CPU of `core`.
    pub fn current_task(&self, core: CoreId) -> Option<TaskId> {
        self.cores[core.0].current
    }

    pub fn task_state(&self, t: TaskId) -> TaskState {
        self.tasks.state[t.0]
    }

    /// The core whose queue the task belongs to (last placement if blocked).
    pub fn task_core(&self, t: TaskId) -> CoreId {
        self.tasks.core[t.0]
    }

    pub fn task_group(&self, t: TaskId) -> GroupId {
        self.tasks.cold[t.0].group
    }

    pub fn task_name(&self, t: TaskId) -> &str {
        &self.tasks.cold[t.0].name
    }

    /// Cumulative CPU time (utime+stime equivalent) as of now.
    pub fn task_exec_total(&self, t: TaskId) -> SimDuration {
        self.tasks.exec_total_at(t.0, self.now())
    }

    pub fn task_migrations(&self, t: TaskId) -> u64 {
        self.tasks.cold[t.0].migrations
    }

    pub fn task_wakeups(&self, t: TaskId) -> u64 {
        self.tasks.cold[t.0].wakeups
    }

    pub fn task_rss(&self, t: TaskId) -> u64 {
        self.tasks.cold[t.0].rss_bytes
    }

    pub fn task_pinned(&self, t: TaskId) -> Option<CoreId> {
        self.tasks.cold[t.0].pinned
    }

    pub fn task_spawned_at(&self, t: TaskId) -> SimTime {
        self.tasks.cold[t.0].spawned_at
    }

    pub fn task_exited_at(&self, t: TaskId) -> Option<SimTime> {
        self.tasks.cold[t.0].exited_at
    }

    pub fn task_may_run_on(&self, t: TaskId, core: CoreId) -> bool {
        self.tasks.may_run_on(t.0, core)
    }

    /// First core the task's affinity mask allows.
    pub fn first_allowed_core(&self, t: TaskId) -> CoreId {
        let cold = &self.tasks.cold[t.0];
        if let Some(p) = cold.pinned {
            return p;
        }
        match &cold.allowed {
            Some(mask) => *mask.first().expect("empty affinity mask"),
            None => CoreId(0),
        }
    }

    /// Linux's cache-hot heuristic: the task ran on its core within
    /// `cache_hot_time` (≈5 ms). SMT-sibling exemption is applied by the
    /// Linux balancer itself.
    pub fn is_cache_hot(&self, t: TaskId) -> bool {
        if self.tasks.state[t.0] == TaskState::Running {
            return true;
        }
        self.now().saturating_since(self.tasks.last_ran_at[t.0]) < self.cfg.cache_hot_time
    }

    /// All task ids ever spawned.
    pub fn all_tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(TaskId)
    }

    /// Live (non-exited) tasks in a group.
    pub fn group_live_tasks(&self, g: GroupId) -> Vec<TaskId> {
        (0..self.tasks.len())
            .filter(|&i| self.tasks.cold[i].group == g && self.tasks.state[i] != TaskState::Exited)
            .map(TaskId)
            .collect()
    }

    /// All tasks ever spawned in a group.
    pub fn group_tasks(&self, g: GroupId) -> Vec<TaskId> {
        (0..self.tasks.len())
            .filter(|&i| self.tasks.cold[i].group == g)
            .map(TaskId)
            .collect()
    }

    /// When the group's last task exited, if it has.
    pub fn group_finished_at(&self, g: GroupId) -> Option<SimTime> {
        self.groups[g.0].finished_at
    }

    pub fn total_migrations(&self) -> u64 {
        self.total_migrations
    }

    /// Selects the same-instant event [`OrderingPolicy`] for the rest of
    /// the run (see `speedbal_sim::ordering`). The default FIFO keeps the
    /// committed bit-identical `(time, seq)` contract; non-FIFO policies
    /// explore other legal serializations of same-instant events — every
    /// scheduling decision is driven off `events.pop()`, so this one knob
    /// covers the whole stepping loop. Call before the first step.
    pub fn set_ordering_policy(&mut self, policy: OrderingPolicy) {
        self.events.set_ordering(policy);
    }

    /// The `(choice, arity)` branch-point log of an
    /// `OrderingPolicy::Exhaustive` run (empty under any other policy);
    /// feed it to `speedbal_sim::ordering::next_prefix` to enumerate the
    /// schedule tree.
    pub fn ordering_log(&self) -> &[(u32, u32)] {
        self.events.ordering_log()
    }

    /// Starts structured event tracing with default settings. Idempotent.
    /// Recording is strictly read-only with respect to scheduling: a traced
    /// run produces the same schedule as an untraced one.
    pub fn enable_tracing(&mut self) {
        self.enable_tracing_with(TraceConfig::default());
    }

    /// Starts structured event tracing with explicit settings. Idempotent
    /// (a second call keeps the existing buffer).
    pub fn enable_tracing_with(&mut self, cfg: TraceConfig) {
        if self.trace.is_some() {
            return;
        }
        let interval = cfg.sample_interval;
        let mut buf = Box::new(TraceBuffer::with_config(cfg));
        buf.set_n_cores(self.cores.len());
        let now = self.now();
        for i in 0..self.tasks.len() {
            if self.tasks.state[i] != TaskState::Exited {
                buf.task_spawned(i, &self.tasks.cold[i].name, now);
            }
        }
        self.trace = Some(buf);
        self.sampler_last = now;
        self.sync_sampler_baseline(now);
        if self.tasks.any_live() {
            self.arm_sampler(now + interval);
        }
    }

    /// True iff tracing is on.
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// The trace collected so far (None unless tracing is enabled).
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_deref()
    }

    /// Detaches and returns the trace buffer, turning tracing off.
    pub fn take_trace(&mut self) -> Option<TraceBuffer> {
        self.sampler_armed = false;
        self.trace.take().map(|b| *b)
    }

    /// Records a trace event stamped with the current time (no-op when
    /// tracing is off). Public so apps and balancers can contribute
    /// domain-level events (barrier episodes, balancer activations).
    pub fn trace_event(&mut self, core: CoreId, event: TraceEvent) {
        if let Some(buf) = self.trace.as_mut() {
            buf.record(self.events.now(), core, event);
        }
    }

    /// Backwards-compatible alias: migration recording is now part of the
    /// structured trace.
    pub fn enable_migration_log(&mut self) {
        self.enable_tracing();
    }

    /// The migrations recorded so far (empty unless tracing is enabled),
    /// reconstructed from `Migrate` trace records. Wake placements are
    /// excluded, matching `total_migrations` accounting.
    pub fn migration_log(&self) -> Vec<MigrationRecord> {
        let Some(buf) = self.trace.as_deref() else {
            return Vec::new();
        };
        buf.records()
            .filter_map(|rec| match rec.event {
                TraceEvent::Migrate {
                    task,
                    from,
                    to,
                    reason,
                    ..
                } if reason != MigrationReason::WakePlacement => Some(MigrationRecord {
                    time: rec.time,
                    task: TaskId(task),
                    from,
                    to,
                }),
                _ => None,
            })
            .collect()
    }

    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Fraction of pending heap entries that are cancelled-but-unpurged
    /// (see [`EventQueue::dead_ratio`]); bench/diagnostic introspection.
    pub fn event_dead_ratio(&self) -> f64 {
        self.events.dead_ratio()
    }

    /// Slot cancellations performed by the event queue so far.
    pub fn event_cancellations(&self) -> u64 {
        self.events.cancellations()
    }

    /// Dead-entry compaction passes performed by the event queue so far.
    pub fn event_compactions(&self) -> u64 {
        self.events.compactions()
    }

    /// Live (undelivered, uncancelled) events currently pending.
    pub fn events_pending(&self) -> usize {
        self.events.len()
    }

    /// Total CPU-busy time accumulated by a core (excludes the in-flight
    /// stretch).
    pub fn core_busy_time(&self, core: CoreId) -> SimDuration {
        self.cores[core.0].busy_total
    }

    pub fn core_switches(&self, core: CoreId) -> u64 {
        self.cores[core.0].nr_switches
    }

    /// Number of conditions allocated (diagnostics).
    pub fn n_conds(&self) -> usize {
        self.conds.len()
    }

    // ------------------------------------------------------------------
    // Mutations
    // ------------------------------------------------------------------

    /// Registers a new task group.
    pub fn new_group(&mut self) -> GroupId {
        let id = GroupId(self.groups.len());
        self.groups.push(Group::default());
        id
    }

    /// Allocates a condition usable by programs (apps pre-allocate barrier
    /// episode conditions here).
    pub fn alloc_cond(&mut self) -> CondId {
        self.conds.alloc()
    }

    /// True iff the condition has been set.
    pub fn cond_is_set(&self, c: CondId) -> bool {
        self.conds.is_set(c)
    }

    /// Spawns a task. Placement: the spec's pin wins; otherwise the
    /// balancer's `place_task` decides (Linux tries an idle core, the speed
    /// balancer pins round-robin, etc.).
    pub fn spawn(&mut self, spec: SpawnSpec) -> TaskId {
        let id = TaskId(self.tasks.len());
        let now = self.now();
        let group = spec.group;
        assert!(group.0 < self.groups.len(), "spawn into unknown group");
        let rng = self.rng.fork(id.0 as u64 + 0x5eed);
        let task = Task {
            id,
            name: spec.name,
            group,
            state: TaskState::Runnable,
            activity: Activity::Fresh,
            core: CoreId(0),
            pinned: spec.pinned,
            allowed: spec.allowed,
            vruntime: 0,
            weight: spec.weight.max(1),
            exec_total: SimDuration::ZERO,
            last_dispatched: now,
            last_ran_at: now,
            migrations: 0,
            wakeups: 0,
            home_node: None,
            rss_bytes: spec.rss_bytes,
            mem_intensity: spec.mem_intensity,
            pending_stall: SimDuration::ZERO,
            suspended: false,
            program: Some(spec.program),
            spawned_at: now,
            exited_at: None,
            sleep_gen: 0,
        };
        self.tasks.push(task);
        // Newest TaskId: pushing keeps the member list sorted. Placement
        // below relocates it via `move_member`.
        self.members[0].push(id);
        self.task_rng_store(id, rng);
        self.groups[group.0].total += 1;
        self.groups[group.0].live += 1;

        let core = if let Some(p) = self.tasks.cold[id.0].pinned {
            p
        } else {
            let chosen = self.with_balancer(|bal, sys| {
                let c = bal.place_task(sys, id);
                (c, bal.pin_on_place(sys, id))
            });
            match chosen {
                Some((c, pin)) if self.tasks.may_run_on(id.0, c) => {
                    if pin {
                        self.tasks.cold[id.0].pinned = Some(c);
                    }
                    c
                }
                _ => self.first_allowed_core(id),
            }
        };
        // First-touch memory placement: the task's pages land on the node
        // of the core it starts on.
        self.tasks.cold[id.0].home_node = Some(self.topo.node_of(core));
        if let Some(buf) = self.trace.as_mut() {
            let name = self.tasks.cold[id.0].name.clone();
            buf.task_spawned(id.0, &name, now);
            if !self.sampler_armed {
                let interval = buf.config().sample_interval;
                self.sampler_last = now;
                self.sync_sampler_baseline(now);
                self.arm_sampler(now + interval);
            }
        }
        self.enqueue_task(id, core, false);
        self.drain_conds();
        if self.check.is_some() {
            self.invariant_tick("post-spawn");
        }
        id
    }

    /// Installs (or clears) a hard single-core pin, as `sched_setaffinity`
    /// with a one-CPU mask would. Pinning to a different core than the task
    /// currently occupies migrates it immediately.
    pub fn pin_task(&mut self, t: TaskId, to: Option<CoreId>) {
        self.tasks.cold[t.0].pinned = to;
        if let Some(c) = to {
            if self.tasks.core[t.0] != c && self.tasks.state[t.0] != TaskState::Exited {
                self.migrate_task(t, c);
            }
        }
    }

    /// Moves a task to another core **immediately**, as `sched_setaffinity`
    /// does ("without allowing the task to finish the run time remaining in
    /// its quantum"). Pays the cache-refill stall from the cost model.
    /// Returns false if the task cannot move (exited, same core, or
    /// affinity-disallowed for kernel balancers).
    pub fn migrate_task(&mut self, t: TaskId, to: CoreId) -> bool {
        let now = self.now();
        let from = self.tasks.core[t.0];
        if self.tasks.state[t.0] == TaskState::Exited || from == to || to.0 >= self.cores.len() {
            return false;
        }
        if self.trace.is_some() {
            let tier = self.topo.common_level(from, to);
            let reason = self.migration_reason;
            self.trace_event(
                to,
                TraceEvent::Migrate {
                    task: t.0,
                    from,
                    to,
                    tier,
                    reason,
                },
            );
        }
        let stall = self
            .cost
            .migration_cost(&self.topo, from, to, self.tasks.cold[t.0].rss_bytes);
        match self.tasks.state[t.0] {
            TaskState::Running => {
                // Rip it off the CPU: account the partial stretch, then move.
                debug_assert_eq!(self.cores[from.0].current, Some(t));
                self.cores[from.0].current = None;
                self.current_mi[from.0] = 0.0;
                // Cancel the armed boundary event for the interrupted
                // stretch: re-dispatching below arms a fresh one, and the
                // stale boundary would otherwise keep interrupting the
                // next task at nanosecond granularity.
                self.events.cancel_slot(self.cores[from.0].slot);
                self.account_and_settle(t, from, now);
                if self.tasks.state[t.0] == TaskState::Exited {
                    // The interrupted stretch completed its program.
                    self.pick_and_dispatch(from.0, now);
                    self.drain_conds();
                    return false;
                }
                self.detach_vruntime_common(t, from);
                self.finish_migration(t, from, to, stall, now);
                self.pick_and_dispatch(from.0, now);
            }
            TaskState::Runnable => {
                debug_assert!(self.tasks.on_queue(t.0));
                if self.tasks.suspended[t.0] {
                    // Parked off-queue: nothing to dequeue.
                    self.detach_vruntime_common(t, from);
                    self.finish_migration(t, from, to, stall, now);
                } else {
                    let v = self.tasks.vruntime[t.0];
                    let removed = self.cores[from.0].queue.dequeue(v, t);
                    debug_assert!(removed, "runnable task missing from queue");
                    self.detach_vruntime_common(t, from);
                    self.finish_migration(t, from, to, stall, now);
                    // The source queue shrank; its current task's slice grew.
                    self.reschedule(from, now);
                }
            }
            TaskState::Blocked => {
                // Off-queue: just retarget; it will enqueue there on wake.
                self.move_member(t, to);
                self.tasks.core[t.0] = to;
                self.tasks.cold[t.0].migrations += 1;
                self.tasks.pending_stall[t.0] += stall;
                self.total_migrations += 1;
            }
            TaskState::Exited => unreachable!(),
        }
        self.drain_conds();
        if self.check.is_some() {
            self.invariant_tick("post-migration");
        }
        true
    }

    /// [`System::migrate_task`] with the policy decision that caused the
    /// move attributed in the trace.
    pub fn migrate_task_with_reason(
        &mut self,
        t: TaskId,
        to: CoreId,
        reason: MigrationReason,
    ) -> bool {
        self.migration_reason = reason;
        let moved = self.migrate_task(t, to);
        self.migration_reason = MigrationReason::Unspecified;
        moved
    }

    /// [`System::pin_task`] with the policy decision attributed in the
    /// trace (the speed balancer migrates by hard-pinning).
    pub fn pin_task_with_reason(&mut self, t: TaskId, to: Option<CoreId>, reason: MigrationReason) {
        self.migration_reason = reason;
        self.pin_task(t, to);
        self.migration_reason = MigrationReason::Unspecified;
    }

    /// Arms (or re-arms) a balancer timer with the given key.
    pub fn set_balancer_timer(&mut self, key: u64, at: SimTime) {
        let at = at.max(self.now());
        self.events.schedule(at, Ev::BalancerTimer { key });
    }

    /// Takes a task off the runnable set even though it is logically
    /// runnable (DWRR's "expired" queue). A running task is interrupted and
    /// accounted first. No effect on exited tasks. Idempotent.
    pub fn suspend_task(&mut self, t: TaskId) {
        let now = self.now();
        if self.tasks.suspended[t.0] || self.tasks.state[t.0] == TaskState::Exited {
            return;
        }
        self.tasks.suspended[t.0] = true;
        match self.tasks.state[t.0] {
            TaskState::Running => {
                let core = self.tasks.core[t.0];
                debug_assert_eq!(self.cores[core.0].current, Some(t));
                self.cores[core.0].current = None;
                self.current_mi[core.0] = 0.0;
                // Cancel the interrupted stretch's boundary event (see
                // migrate_task).
                self.events.cancel_slot(self.cores[core.0].slot);
                self.account_and_settle(t, core, now);
                // account_and_settle leaves a still-runnable task unqueued;
                // `suspended` keeps it that way (with detached vruntime,
                // matching blocked tasks). If it blocked or exited the flag
                // is simply latent until resume.
                if self.tasks.state[t.0] == TaskState::Runnable {
                    self.detach_vruntime_common(t, core);
                }
                self.pick_and_dispatch(core.0, now);
                self.drain_conds();
            }
            TaskState::Runnable => {
                let v = self.tasks.vruntime[t.0];
                let core = self.tasks.core[t.0];
                if self.cores[core.0].queue.dequeue(v, t) {
                    self.detach_vruntime_common(t, core);
                    self.reschedule(core, now);
                }
            }
            TaskState::Blocked => {} // stays off-queue; wake respects the flag
            TaskState::Exited => unreachable!(),
        }
    }

    /// Puts a suspended task back on the runnable set (on its current
    /// core). Idempotent for non-suspended tasks.
    pub fn resume_task(&mut self, t: TaskId) {
        if !self.tasks.suspended[t.0] {
            return;
        }
        self.tasks.suspended[t.0] = false;
        if self.tasks.state[t.0] == TaskState::Runnable {
            let core = self.tasks.core[t.0];
            let now = self.now();
            self.attach_and_enqueue(t, core, false, now);
        }
    }

    /// True iff the task is balancer-suspended.
    pub fn task_suspended(&self, t: TaskId) -> bool {
        self.tasks.suspended[t.0]
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Processes a single event. Returns false when no events remain.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.events.pop() else {
            return false;
        };
        self.events_processed += 1;
        assert!(
            self.events_processed < self.cfg.max_events,
            "event budget exhausted at {} — runaway simulation?",
            self.now()
        );
        match ev.event {
            // Slot-armed, so a popped core event is always live.
            Ev::Core { core } => self.advance_core(core, ev.time),
            Ev::Wake { task, gen } => {
                if let Activity::Sleeping { gen: g, .. } = self.tasks.activity[task.0] {
                    if g == gen && self.tasks.state[task.0] == TaskState::Blocked {
                        self.wake_task(task);
                    }
                }
            }
            Ev::BalancerTimer { key } => {
                self.with_balancer(|bal, sys| bal.on_timer(sys, key));
            }
            Ev::TraceSample => self.handle_trace_sample(ev.time),
            Ev::FreqStep { core } => self.handle_freq_step(core, ev.time),
        }
        self.drain_conds();
        self.flush_balancer_notifications();
        if self.check.is_some() {
            let point = match ev.event {
                Ev::BalancerTimer { .. } => "post-balance-tick",
                _ => "post-step",
            };
            self.invariant_tick(point);
        }
        true
    }

    /// [`System::step`] with a wall-clock breakdown: times the event-queue
    /// pop, the handler (split by event kind), and the post-step
    /// drain/flush, accumulating into `p`. Time spent inside balancer hooks
    /// (placement, idle pulls, timers, deschedule/exit notifications) is
    /// additionally collected into `p.balancer_ns` — a subset of the gross
    /// phase times, not an extra phase. Drives `speedbal-cli bench
    /// --profile`; the unprofiled [`System::step`] stays branch-free.
    pub fn step_profiled(&mut self, p: &mut StepProfile) -> bool {
        let t0 = profile_timestamp();
        let Some(ev) = self.events.pop() else {
            return false;
        };
        let t1 = profile_timestamp();
        self.events_processed += 1;
        assert!(
            self.events_processed < self.cfg.max_events,
            "event budget exhausted at {} — runaway simulation?",
            self.now()
        );
        self.profile_balancer = true;
        self.balancer_ns = 0;
        match ev.event {
            Ev::Core { core } => self.advance_core(core, ev.time),
            Ev::Wake { task, gen } => {
                if let Activity::Sleeping { gen: g, .. } = self.tasks.activity[task.0] {
                    if g == gen && self.tasks.state[task.0] == TaskState::Blocked {
                        self.wake_task(task);
                    }
                }
            }
            Ev::BalancerTimer { key } => {
                self.with_balancer(|bal, sys| bal.on_timer(sys, key));
            }
            Ev::TraceSample => self.handle_trace_sample(ev.time),
            Ev::FreqStep { core } => self.handle_freq_step(core, ev.time),
        }
        let t2 = profile_timestamp();
        self.drain_conds();
        self.flush_balancer_notifications();
        let t3 = profile_timestamp();
        self.profile_balancer = false;
        if self.check.is_some() {
            let point = match ev.event {
                Ev::BalancerTimer { .. } => "post-balance-tick",
                _ => "post-step",
            };
            self.invariant_tick(point);
        }
        p.steps += 1;
        p.pop_ns += t1 - t0;
        let handler = t2 - t1;
        match ev.event {
            Ev::Core { .. } => p.core_ns += handler,
            Ev::Wake { .. } => p.wake_ns += handler,
            Ev::BalancerTimer { .. } => p.timer_ns += handler,
            Ev::TraceSample | Ev::FreqStep { .. } => p.other_ns += handler,
        }
        p.post_ns += t3 - t2;
        p.balancer_ns += self.balancer_ns;
        true
    }

    /// Runs until the event queue is exhausted (all tasks exited and all
    /// timers drained). Returns the final time.
    pub fn run_to_quiescence(&mut self) -> SimTime {
        while self.step() {}
        self.now()
    }

    /// Runs until `group` finishes or the system goes quiescent or `deadline`
    /// passes. Returns the group completion time if it finished.
    pub fn run_until_group_done(&mut self, group: GroupId, deadline: SimTime) -> Option<SimTime> {
        loop {
            if let Some(t) = self.groups[group.0].finished_at {
                return Some(t);
            }
            match self.events.peek_time() {
                Some(t) if t <= deadline => {
                    self.step();
                }
                _ => return self.groups[group.0].finished_at,
            }
        }
    }

    /// Runs until simulated `deadline` (events after it stay pending) and
    /// advances the clock to exactly `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.events.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.events.advance_to(deadline);
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn with_balancer<R>(
        &mut self,
        f: impl FnOnce(&mut Box<dyn Balancer>, &mut System) -> R,
    ) -> Option<R> {
        let mut bal = self.balancer.take()?;
        if self.profile_balancer {
            let t = profile_timestamp();
            let r = f(&mut bal, self);
            self.balancer_ns += profile_timestamp() - t;
            self.balancer = Some(bal);
            return Some(r);
        }
        let r = f(&mut bal, self);
        self.balancer = Some(bal);
        Some(r)
    }

    fn flush_balancer_notifications(&mut self) {
        while !self.pending_desched.is_empty() || !self.pending_exits.is_empty() {
            // Swap with scratch buffers instead of `mem::take` so the Vec
            // capacity survives the round-trip and steady-state flushing
            // never reallocates.
            let mut desched = std::mem::replace(
                &mut self.pending_desched,
                std::mem::take(&mut self.scratch_desched),
            );
            let mut exits = std::mem::replace(
                &mut self.pending_exits,
                std::mem::take(&mut self.scratch_exits),
            );
            self.with_balancer(|bal, sys| {
                for &(t, c, ran) in desched.iter() {
                    bal.on_task_descheduled(sys, t, c, ran);
                }
                for &t in exits.iter() {
                    bal.on_task_exit(sys, t);
                }
            });
            desched.clear();
            exits.clear();
            self.scratch_desched = desched;
            self.scratch_exits = exits;
        }
    }

    /// Effective compute rate of `task` on `core` right now: core speed
    /// times the current frequency ratio, reduced while an SMT sibling is
    /// busy, divided by the NUMA remote-memory factor.
    fn compute_rate(&mut self, core: CoreId, task: TaskId) -> f64 {
        let mut rate = self.topo.speed_of(core) * self.freq_ratio(core);
        let sf = self.topo.smt_busy_factor();
        if sf < 1.0 {
            let sibling_busy = self.smt_sibs[core.0]
                .iter()
                .any(|s| self.cores[s.0].current.is_some());
            if sibling_busy {
                rate *= sf;
            }
        }
        if let Some(home) = self.tasks.cold[task.0].home_node {
            rate /= self.cost.locality_factor(&self.topo, core, home);
        }
        rate * self.bandwidth_factor(core, task)
    }

    /// Memory-bandwidth contention (enabled per machine): when the summed
    /// intensity of the tasks running in a bandwidth domain exceeds the
    /// domain's sustainable streams, the memory-bound fraction of each
    /// task's execution is scaled down proportionally:
    /// `rate = (1 - mi) + mi * min(1, streams / demand)`.
    fn bandwidth_factor(&mut self, core: CoreId, task: TaskId) -> f64 {
        let mi = self.tasks.mem_intensity[task.0];
        if mi <= 0.0 || !self.topo.models_bandwidth() {
            return 1.0;
        }
        let domain = self.topo.bw_domain_of(core);
        // Dispatch storms re-create the identical intensity configuration
        // event after event, so the factor is memoized per core under a
        // raw-bits snapshot of the inputs. The key comparison revalidates
        // against the live `current_mi` on every call — no invalidation
        // hooks — and a hit returns exactly what the serial summation
        // below produced for the same bits, so schedules cannot diverge.
        let cores = &self.bw_domain_cores[domain];
        let mis = &self.current_mi;
        let cache = &mut self.bw_cache[core.0];
        if cache.valid && cache.own == mi.to_bits() && cache.key.len() == cores.len() {
            // Contiguous domains (the common, whole-socket case) compare the
            // live slice flat; irregular ones gather core by core.
            let hit = match self.bw_domain_contig[domain] {
                Some(lo) => mis[lo..lo + cores.len()]
                    .iter()
                    .zip(cache.key.iter())
                    .all(|(&m, &k)| m.to_bits() == k),
                None => cores
                    .iter()
                    .zip(cache.key.iter())
                    .all(|(&c, &k)| mis[c.0].to_bits() == k),
            };
            if hit {
                return cache.factor;
            }
        }
        let mut demand = mi; // self counts even while being dispatched
        for &c in cores {
            if c == core {
                continue;
            }
            demand += mis[c.0];
        }
        let streams = self.topo.bw_streams();
        let factor = if demand <= streams {
            1.0
        } else {
            (1.0 - mi) + mi * (streams / demand)
        };
        cache.valid = true;
        cache.own = mi.to_bits();
        cache.key.clear();
        cache.key.extend(cores.iter().map(|&c| mis[c.0].to_bits()));
        cache.factor = factor;
        factor
    }

    /// Re-arms the core's slot with an immediate core event, cancelling any
    /// armed boundary event in place.
    fn reschedule(&mut self, core: CoreId, now: SimTime) {
        let slot = self.cores[core.0].slot;
        self.events
            .schedule_in_slot(slot, now, Ev::Core { core: core.0 });
    }

    /// Core event fired: pull the current task off the CPU, account it,
    /// settle it, then dispatch the next one.
    fn advance_core(&mut self, c: usize, now: SimTime) {
        if let Some(tid) = self.cores[c].current.take() {
            self.current_mi[c] = 0.0;
            self.account_and_settle(tid, CoreId(c), now);
            // Requeue if the task remains runnable (and not suspended).
            if self.tasks.state[tid.0] == TaskState::Runnable {
                if self.tasks.suspended[tid.0] {
                    self.detach_vruntime_common(tid, CoreId(c));
                } else {
                    let v = self.tasks.vruntime[tid.0];
                    self.cores[c].queue.enqueue(v, tid);
                }
            }
        }
        self.pick_and_dispatch(c, now);
    }

    /// Accounts the stretch the task just ran, applies activity progress,
    /// and walks through any completed transitions (may run the program,
    /// block, sleep or exit the task). On return the task is in state
    /// Runnable (not queued), Blocked, or Exited.
    fn account_and_settle(&mut self, tid: TaskId, core: CoreId, now: SimTime) {
        let rate = self.cores[core.0].current_rate;
        {
            let i = tid.0;
            debug_assert_eq!(self.tasks.state[i], TaskState::Running);
            let ran = now.saturating_since(self.tasks.last_dispatched[i]);
            self.tasks.exec_total[i] += ran;
            self.tasks.last_ran_at[i] = now;
            // Nice-0 weight (1024) is the overwhelmingly common case; skip
            // the division (x * 1024 / 1024 == x exactly).
            self.tasks.vruntime[i] += if self.tasks.weight[i] == 1024 {
                ran.as_nanos()
            } else {
                ran.as_nanos() * 1024 / self.tasks.weight[i] as u64
            };
            self.cores[core.0].busy_total += ran;
            // Advance the queue's vruntime floor.
            let floor = match self.cores[core.0].queue.peek_min() {
                Some((v, _)) => v.min(self.tasks.vruntime[i]),
                None => self.tasks.vruntime[i],
            };
            self.cores[core.0].queue.advance_min_vruntime(floor);

            // Burn the migration stall first, then make activity progress.
            let mut wall = ran;
            if !self.tasks.pending_stall[i].is_zero() {
                let burned = self.tasks.pending_stall[i].min(wall);
                self.tasks.pending_stall[i] -= burned;
                wall = wall.saturating_sub(burned);
            }
            match &mut self.tasks.activity[i] {
                Activity::Compute { remaining } => {
                    let done = wall.mul_f64(rate);
                    *remaining = remaining.saturating_sub(done);
                }
                Activity::SpinThenBlock { remaining_spin, .. } => {
                    *remaining_spin = remaining_spin.saturating_sub(wall);
                }
                _ => {}
            }
            self.tasks.state[i] = TaskState::Runnable;
            if self.desched_events_wanted {
                self.pending_desched.push((tid, core, ran));
            }
            if let Some(buf) = self.trace.as_mut() {
                buf.record(now, core, TraceEvent::Desched { task: tid.0, ran });
            }
        }
        // A `sched_yield` completes: the yielder parks at the right edge of
        // the queue so everyone else runs first (CFS yield_task).
        if let Activity::YieldLoop { cond } = self.tasks.activity[tid.0] {
            if !self.conds.is_set(cond) {
                if let Some(maxv) = self.cores[core.0].queue.max_vruntime() {
                    let v = &mut self.tasks.vruntime[tid.0];
                    *v = (*v).max(maxv + 1);
                }
            }
        }
        self.settle_task(tid, now);
    }

    /// Walks a runnable task through every transition that is already due:
    /// finished computations, satisfied conditions, expired spin timeouts.
    /// Calls the program as needed.
    fn settle_task(&mut self, tid: TaskId, now: SimTime) {
        for _ in 0..MAX_CHAINED_TRANSITIONS {
            let due = match self.tasks.activity[tid.0] {
                Activity::Fresh => true,
                Activity::Compute { remaining } => {
                    remaining.is_zero() && self.tasks.pending_stall[tid.0].is_zero()
                }
                Activity::Spin { cond } | Activity::YieldLoop { cond } => self.conds.is_set(cond),
                Activity::SpinThenBlock {
                    cond,
                    remaining_spin,
                } => {
                    if self.conds.is_set(cond) {
                        true
                    } else if remaining_spin.is_zero() {
                        // Timeout: fall asleep on the condition.
                        self.tasks.activity[tid.0] = Activity::Blocked { cond };
                        self.tasks.state[tid.0] = TaskState::Blocked;
                        let core = self.tasks.core[tid.0];
                        if let Some(buf) = self.trace.as_mut() {
                            buf.record(now, core, TraceEvent::Sleep { task: tid.0 });
                        }
                        self.detach_vruntime(tid);
                        // Waiter was registered at spin entry; keep it.
                        return;
                    } else {
                        false
                    }
                }
                Activity::Blocked { .. } | Activity::Sleeping { .. } | Activity::Exited => {
                    return;
                }
            };
            if !due {
                return;
            }
            let directive = self.run_program(tid, now);
            if self.apply_directive(tid, directive, now) {
                return; // task went off-queue (blocked/sleeping/exited)
            }
        }
        panic!(
            "task {} livelocked: {MAX_CHAINED_TRANSITIONS} zero-time transitions at {now}",
            self.tasks.cold[tid.0].name
        );
    }

    fn run_program(&mut self, tid: TaskId, now: SimTime) -> Directive {
        let mut program = self.tasks.cold[tid.0]
            .program
            .take()
            .expect("program re-entered");
        let mut rng = self.task_rng_take(tid);
        let directive = {
            let mut ctx = ProgramCtx {
                now,
                task: tid,
                core: self.tasks.core[tid.0],
                conds: &mut self.conds,
                rng: &mut rng,
                trace: self.trace.as_deref_mut(),
            };
            program.next(&mut ctx)
        };
        self.task_rng_store(tid, rng);
        self.tasks.cold[tid.0].program = Some(program);
        directive
    }

    /// Installs the directive as the task's new activity. Returns true if
    /// the task left the runnable set.
    fn apply_directive(&mut self, tid: TaskId, d: Directive, now: SimTime) -> bool {
        match d {
            Directive::Compute(amount) => {
                self.tasks.activity[tid.0] = Activity::Compute { remaining: amount };
                false
            }
            Directive::SpinUntil(cond) => {
                self.tasks.activity[tid.0] = Activity::Spin { cond };
                if !self.conds.is_set(cond) {
                    self.conds.add_waiter(cond, tid);
                }
                false
            }
            Directive::YieldUntil(cond) => {
                self.tasks.activity[tid.0] = Activity::YieldLoop { cond };
                if !self.conds.is_set(cond) {
                    self.conds.add_waiter(cond, tid);
                }
                false
            }
            Directive::SpinThenBlock { cond, spin } => {
                self.tasks.activity[tid.0] = Activity::SpinThenBlock {
                    cond,
                    remaining_spin: spin,
                };
                if !self.conds.is_set(cond) {
                    self.conds.add_waiter(cond, tid);
                }
                false
            }
            Directive::BlockUntil(cond) => {
                if self.conds.is_set(cond) {
                    // Already satisfied; continue to the next directive via
                    // the settle loop (model it as an instantly-complete
                    // computation).
                    self.tasks.activity[tid.0] = Activity::Compute {
                        remaining: SimDuration::ZERO,
                    };
                    false
                } else {
                    self.tasks.activity[tid.0] = Activity::Blocked { cond };
                    self.tasks.state[tid.0] = TaskState::Blocked;
                    let core = self.tasks.core[tid.0];
                    if let Some(buf) = self.trace.as_mut() {
                        buf.record(now, core, TraceEvent::Sleep { task: tid.0 });
                    }
                    self.conds.add_waiter(cond, tid);
                    self.detach_vruntime(tid);
                    true
                }
            }
            Directive::SleepFor(d) => {
                let dur = d.max(self.cfg.timer_granularity);
                let until = now + dur;
                self.tasks.sleep_gen[tid.0] += 1;
                let gen = self.tasks.sleep_gen[tid.0];
                self.tasks.activity[tid.0] = Activity::Sleeping { until, gen };
                self.tasks.state[tid.0] = TaskState::Blocked;
                let core = self.tasks.core[tid.0];
                if let Some(buf) = self.trace.as_mut() {
                    buf.record(now, core, TraceEvent::Sleep { task: tid.0 });
                }
                self.detach_vruntime(tid);
                self.events.schedule(until, Ev::Wake { task: tid, gen });
                true
            }
            Directive::Exit => {
                self.tasks.activity[tid.0] = Activity::Exited;
                self.tasks.state[tid.0] = TaskState::Exited;
                self.tasks.cold[tid.0].exited_at = Some(now);
                let core = self.tasks.core[tid.0];
                if let Some(buf) = self.trace.as_mut() {
                    buf.record(now, core, TraceEvent::Exit { task: tid.0 });
                }
                let g = self.tasks.cold[tid.0].group;
                let group = &mut self.groups[g.0];
                group.live -= 1;
                if group.live == 0 {
                    group.finished_at = Some(now);
                }
                self.remove_member(tid);
                self.pending_exits.push(tid);
                true
            }
        }
    }

    /// Relocates `tid`'s membership record to `to`'s list, keyed off the
    /// task's current `core` field — call *before* reassigning `task.core`.
    /// Lists stay sorted by `TaskId` so readers see a deterministic order.
    fn move_member(&mut self, tid: TaskId, to: CoreId) {
        let from = self.tasks.core[tid.0];
        if from == to {
            return;
        }
        let v = &mut self.members[from.0];
        let pos = v.partition_point(|&t| t < tid);
        debug_assert_eq!(v.get(pos), Some(&tid), "member list out of sync");
        v.remove(pos);
        let v = &mut self.members[to.0];
        let pos = v.partition_point(|&t| t < tid);
        v.insert(pos, tid);
    }

    /// Drops `tid` from its core's member list (task exit).
    fn remove_member(&mut self, tid: TaskId) {
        let from = self.tasks.core[tid.0];
        let v = &mut self.members[from.0];
        let pos = v.partition_point(|&t| t < tid);
        debug_assert_eq!(v.get(pos), Some(&tid), "member list out of sync");
        v.remove(pos);
    }

    /// CFS-style vruntime normalization when a task leaves a queue.
    fn detach_vruntime(&mut self, tid: TaskId) {
        let core = self.tasks.core[tid.0];
        self.detach_vruntime_common(tid, core);
    }

    fn detach_vruntime_common(&mut self, tid: TaskId, core: CoreId) {
        let min = self.cores[core.0].queue.min_vruntime();
        let v = &mut self.tasks.vruntime[tid.0];
        *v = v.saturating_sub(min);
    }

    fn finish_migration(
        &mut self,
        tid: TaskId,
        _from: CoreId,
        to: CoreId,
        stall: SimDuration,
        now: SimTime,
    ) {
        self.tasks.cold[tid.0].migrations += 1;
        self.tasks.pending_stall[tid.0] += stall;
        self.tasks.state[tid.0] = TaskState::Runnable;
        self.total_migrations += 1;
        self.attach_and_enqueue(tid, to, false, now);
    }

    /// Wakes a blocked task: picks a wake core (balancer hook), enqueues
    /// with sleeper credit, and preempts if warranted.
    fn wake_task(&mut self, tid: TaskId) {
        let now = self.now();
        debug_assert_eq!(self.tasks.state[tid.0], TaskState::Blocked);
        self.tasks.cold[tid.0].wakeups += 1;
        // Next directive runs when dispatched.
        self.tasks.activity[tid.0] = Activity::Fresh;
        let chosen = self
            .with_balancer(|bal, sys| bal.select_wake_core(sys, tid))
            .unwrap_or(self.tasks.core[tid.0]);
        let core = if self.tasks.may_run_on(tid.0, chosen) {
            chosen
        } else {
            self.first_allowed_core(tid)
        };
        if self.trace.is_some() {
            let prev = self.tasks.core[tid.0];
            self.trace_event(core, TraceEvent::Wake { task: tid.0 });
            if prev != core {
                // Trace-only: wake placements do not count as migrations in
                // `total_migrations`, but they are real cross-core moves.
                let tier = self.topo.common_level(prev, core);
                self.trace_event(
                    core,
                    TraceEvent::Migrate {
                        task: tid.0,
                        from: prev,
                        to: core,
                        tier,
                        reason: MigrationReason::WakePlacement,
                    },
                );
            }
        }
        self.tasks.state[tid.0] = TaskState::Runnable;
        self.attach_and_enqueue(tid, core, true, now);
    }

    /// Enqueues a detached task on `core` (attaching vruntime, optionally
    /// with sleeper credit) and triggers dispatch/preemption.
    fn attach_and_enqueue(&mut self, tid: TaskId, core: CoreId, sleeper: bool, now: SimTime) {
        if self.tasks.suspended[tid.0] {
            // Stays logically runnable but parked (DWRR expired) with its
            // vruntime detached; `resume` attaches and enqueues it.
            self.move_member(tid, core);
            self.tasks.core[tid.0] = core;
            return;
        }
        self.move_member(tid, core);
        let min = self.cores[core.0].queue.min_vruntime();
        {
            self.tasks.core[tid.0] = core;
            let v = &mut self.tasks.vruntime[tid.0];
            *v = v.saturating_add(min);
            if sleeper {
                let credit = self.cfg.sleeper_credit.as_nanos();
                *v = (*v).max(min.saturating_sub(credit));
            }
        }
        let v = self.tasks.vruntime[tid.0];
        self.cores[core.0].queue.enqueue(v, tid);
        match self.cores[core.0].current {
            None => self.reschedule(core, now),
            Some(cur) => {
                let gran = self.cfg.wakeup_granularity.as_nanos();
                if v.saturating_add(gran) < self.tasks.vruntime[cur.0] {
                    if let Some(buf) = self.trace.as_mut() {
                        buf.record(
                            now,
                            core,
                            TraceEvent::Preempt {
                                task: cur.0,
                                by: tid.0,
                            },
                        );
                    }
                    self.reschedule(core, now);
                } else {
                    // The running task's slice shrank with the longer queue;
                    // re-arm its boundary.
                    self.rearm_current(core, now);
                }
            }
        }
    }

    /// Spawn-time placement helper: attach a fresh task (vruntime starts at
    /// the queue floor so it is neither penalized nor favored).
    fn enqueue_task(&mut self, tid: TaskId, core: CoreId, sleeper: bool) {
        let now = self.now();
        self.tasks.vruntime[tid.0] = 0;
        self.attach_and_enqueue(tid, core, sleeper, now);
    }

    /// Re-arms the running task's boundary event without descheduling it
    /// (used when queue length changes under it).
    fn rearm_current(&mut self, core: CoreId, now: SimTime) {
        if self.cores[core.0].current.is_some() {
            // Cheap and safe: treat as a reschedule; accounting is exact and
            // the min-vruntime task (likely the same) is re-dispatched.
            self.reschedule(core, now);
        }
    }

    /// Picks the next task for an empty CPU and arms its boundary event.
    fn pick_and_dispatch(&mut self, c: usize, now: SimTime) {
        debug_assert!(self.cores[c].current.is_none());
        loop {
            let Some((_v, tid)) = self.cores[c].queue.pop_min() else {
                // Queue empty: newidle balancing may refill it.
                self.with_balancer(|bal, sys| bal.on_core_idle(sys, CoreId(c)));
                if let Some((_v2, tid2)) = self.cores[c].queue.pop_min() {
                    if self.try_dispatch(c, tid2, now) {
                        return;
                    }
                    continue;
                }
                // Truly idle.
                self.update_busy_flag(c, now);
                return;
            };
            if self.try_dispatch(c, tid, now) {
                return;
            }
        }
    }

    /// Reconciles the core's stable busy flag with its actual occupancy;
    /// notifies SMT siblings only on a real transition. Called at the end
    /// of every dispatch cycle, so same-instant deschedule/redispatch pairs
    /// do not generate notification ping-pong.
    fn update_busy_flag(&mut self, c: usize, now: SimTime) {
        let busy = self.cores[c].current.is_some();
        if self.cores[c].busy_flag != busy {
            self.cores[c].busy_flag = busy;
            self.notify_smt_change(CoreId(c), now);
        }
    }

    /// Settles a picked task; dispatches it if it is still runnable.
    /// Returns true when the CPU is now occupied.
    fn try_dispatch(&mut self, c: usize, tid: TaskId, now: SimTime) -> bool {
        // The task may have been released/blocked/exited while queued.
        self.settle_task(tid, now);
        let state = self.tasks.state[tid.0];
        if state != TaskState::Runnable {
            return false;
        }
        let core = CoreId(c);
        self.tasks.state[tid.0] = TaskState::Running;
        self.tasks.last_dispatched[tid.0] = now;
        // Popped off this core's queue, so membership is already right.
        debug_assert_eq!(self.tasks.core[tid.0], core);
        self.tasks.core[tid.0] = core;
        if let Some(buf) = self.trace.as_mut() {
            buf.record(now, core, TraceEvent::Dispatch { task: tid.0 });
        }
        self.cores[c].current = Some(tid);
        self.current_mi[c] = self.tasks.mem_intensity[tid.0];
        self.cores[c].nr_switches += 1;
        self.cores[c].current_rate = self.compute_rate(core, tid);
        self.update_busy_flag(c, now);
        self.arm_boundary(c, now);
        true
    }

    /// [`SchedConfig::slice_for`], memoized (the config never changes after
    /// construction, and `nr_running` stays small).
    fn slice_for_cached(&mut self, nr: usize) -> SimDuration {
        if self.slice_cache.len() <= nr {
            let cfg = &self.cfg;
            let start = self.slice_cache.len();
            self.slice_cache
                .extend((start..=nr).map(|n| cfg.slice_for(n)));
        }
        self.slice_cache[nr]
    }

    /// Computes and schedules the running task's next boundary event.
    fn arm_boundary(&mut self, c: usize, now: SimTime) {
        let tid = self.cores[c].current.expect("arming idle core");
        let nr = self.cores[c].nr_running();
        let rate = self.cores[c].current_rate;
        let stall = self.tasks.pending_stall[tid.0];
        let activity_wall: Option<SimDuration> = match self.tasks.activity[tid.0] {
            Activity::Compute { remaining } => {
                debug_assert!(rate > 0.0, "dispatched on a zero-speed core");
                Some(stall + remaining.mul_f64(1.0 / rate))
            }
            Activity::Spin { .. } => None, // released externally
            Activity::SpinThenBlock { remaining_spin, .. } => Some(stall + remaining_spin),
            Activity::YieldLoop { .. } => {
                if self.cores[c].queue.is_empty() {
                    // A lone yielder degenerates to a spinner: sched_yield
                    // returns immediately with nobody to yield to.
                    None
                } else {
                    Some(self.cfg.yield_cost)
                }
            }
            Activity::Fresh
            | Activity::Blocked { .. }
            | Activity::Sleeping { .. }
            | Activity::Exited => unreachable!("dispatched unsettled task"),
        };
        let slice_wall: Option<SimDuration> = if nr > 1 {
            Some(self.slice_for_cached(nr))
        } else {
            None
        };
        let mut boundary = match (activity_wall, slice_wall) {
            (Some(a), Some(s)) => Some(a.min(s)),
            (Some(a), None) => Some(a),
            (None, Some(s)) => Some(s),
            (None, None) => None, // external events will reschedule us
        };
        // Bandwidth contention changes with what the *other* cores run;
        // rates are sampled at dispatch, so bandwidth-sensitive tasks
        // resample on a short tick to bound the staleness.
        if self.topo.models_bandwidth() && self.tasks.mem_intensity[tid.0] > 0.0 {
            let tick = SimDuration::from_millis(5);
            boundary = Some(boundary.map_or(tick, |b| b.min(tick)));
        }
        if let Some(b) = boundary {
            // Never arm a zero-delay boundary: settle() guarantees pending
            // work, but a fully-stalled zero slice could otherwise loop.
            let b = b.max(SimDuration::from_nanos(1));
            let slot = self.cores[c].slot;
            self.events
                .schedule_in_slot(slot, now + b, Ev::Core { core: c });
        }
    }

    /// On SMT machines a core going busy/idle changes its siblings' compute
    /// rates; re-arm them.
    fn notify_smt_change(&mut self, core: CoreId, now: SimTime) {
        if self.topo.smt_busy_factor() >= 1.0 {
            return;
        }
        for i in 0..self.smt_sibs[core.0].len() {
            let sib = self.smt_sibs[core.0][i];
            if self.cores[sib.0].current.is_some() {
                self.reschedule(sib, now);
            }
        }
    }

    /// Delivers set conditions: wakes blocked waiters and reschedules cores
    /// whose running task was spin/yield-waiting on a now-set condition.
    fn drain_conds(&mut self) {
        // Conditions drain strictly in set order; ones set while processing
        // (exit-notification side effects) append to the pending queue and
        // are picked up by the same loop. Waiters move through a reusable
        // scratch buffer so draining never allocates in steady state.
        while let Some(cond) = self.conds.pop_pending() {
            let mut waiters = std::mem::take(&mut self.scratch_waiters);
            self.conds.take_waiters_into(cond, &mut waiters);
            for &tid in waiters.iter() {
                match self.tasks.activity[tid.0] {
                    Activity::Blocked { cond: c2 } if c2 == cond => {
                        self.wake_task(tid);
                    }
                    Activity::Spin { cond: c2 }
                    | Activity::YieldLoop { cond: c2 }
                    | Activity::SpinThenBlock { cond: c2, .. }
                        // A running waiter advances right now. A queued
                        // waiter normally advances at its next dispatch,
                        // but its core may have parked its boundary (a
                        // degenerate all-yielders queue), so reschedule
                        // the core in both cases.
                        if c2 == cond && self.tasks.on_queue(tid.0) =>
                    {
                        let core = self.tasks.core[tid.0];
                        self.reschedule(core, self.now());
                    }
                    _ => {}
                }
            }
            waiters.clear();
            self.scratch_waiters = waiters;
        }
    }

    // ------------------------------------------------------------------
    // Tracing speed sampler (read-only w.r.t. scheduling state)
    // ------------------------------------------------------------------

    fn arm_sampler(&mut self, at: SimTime) {
        self.sampler_armed = true;
        self.events.schedule(at, Ev::TraceSample);
    }

    /// Resets the sampler's exec/busy baselines to "as of `now`" so the
    /// first window after (re-)arming measures only fresh progress.
    fn sync_sampler_baseline(&mut self, now: SimTime) {
        self.sampler_exec.clear();
        self.sampler_exec
            .extend((0..self.tasks.len()).map(|i| self.tasks.exec_total_at(i, now)));
        self.sampler_busy.clear();
        for c in 0..self.cores.len() {
            self.sampler_busy.push(self.core_busy_at(c, now));
        }
    }

    /// Core busy time including the in-flight stretch of the current task.
    fn core_busy_at(&self, c: usize, now: SimTime) -> SimDuration {
        let core = &self.cores[c];
        let mut busy = core.busy_total;
        if let Some(cur) = core.current {
            busy += now.saturating_since(self.tasks.last_dispatched[cur.0]);
        }
        busy
    }

    /// Emits one round of per-task speed samples and per-core utilization
    /// samples, then re-arms while any task is still live. Reads scheduler
    /// state but never mutates it, so sampling cannot perturb the run.
    fn handle_trace_sample(&mut self, now: SimTime) {
        self.sampler_armed = false;
        let Some(interval) = self.trace.as_ref().map(|b| b.config().sample_interval) else {
            return; // tracing turned off with a sample still in flight
        };
        let window = now.saturating_since(self.sampler_last);
        if !window.is_zero() {
            self.sampler_exec
                .resize(self.tasks.len(), SimDuration::ZERO);
            for i in 0..self.tasks.len() {
                let exec_now = self.tasks.exec_total_at(i, now);
                let delta = exec_now.saturating_sub(self.sampler_exec[i]);
                self.sampler_exec[i] = exec_now;
                if self.tasks.state[i] == TaskState::Exited && delta.is_zero() {
                    continue; // dead the whole window: no sample
                }
                let speed = delta / window;
                let core = self.tasks.core[i];
                if let Some(buf) = self.trace.as_mut() {
                    buf.record(
                        now,
                        core,
                        TraceEvent::SpeedSample {
                            task: Some(i),
                            speed,
                        },
                    );
                }
            }
            for c in 0..self.cores.len() {
                let busy_now = self.core_busy_at(c, now);
                let delta = busy_now.saturating_sub(self.sampler_busy[c]);
                self.sampler_busy[c] = busy_now;
                let util = delta / window;
                if let Some(buf) = self.trace.as_mut() {
                    buf.record(
                        now,
                        CoreId(c),
                        TraceEvent::SpeedSample {
                            task: None,
                            speed: util,
                        },
                    );
                }
            }
            self.sampler_last = now;
        }
        // Re-arm only while something is alive, so tracing never keeps an
        // otherwise-finished simulation from quiescing.
        if self.tasks.any_live() {
            self.arm_sampler(now + interval);
        }
    }

    // Per-task RNG storage. Kept out of `Task` construction hot paths.
    fn task_rng_take(&mut self, tid: TaskId) -> SimRng {
        self.task_rngs
            .get_mut(tid.0)
            .and_then(Option::take)
            .expect("task rng missing")
    }

    fn task_rng_store(&mut self, tid: TaskId, rng: SimRng) {
        if self.task_rngs.len() <= tid.0 {
            self.task_rngs.resize_with(tid.0 + 1, || None);
        }
        self.task_rngs[tid.0] = Some(rng);
    }
}
