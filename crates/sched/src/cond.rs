//! One-shot conditions: the synchronization primitive programs wait on.
//!
//! A condition starts unset and is set exactly once (e.g. "everyone has
//! arrived at barrier episode 17"). Barriers and locks in `speedbal-apps`
//! allocate a fresh condition per episode. Waiters register so the system
//! can wake blocked tasks and release spinners the instant a condition is
//! set.

use crate::task::TaskId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Handle to a one-shot condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CondId(pub usize);

#[derive(Debug, Default)]
struct Cond {
    set: bool,
    waiters: Vec<TaskId>,
}

/// Table of all conditions in a [`crate::System`].
#[derive(Debug, Default)]
pub struct CondTable {
    conds: Vec<Cond>,
    /// Conditions set since the system last drained wakeups, oldest first.
    pending: VecDeque<CondId>,
}

impl CondTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh, unset condition.
    pub fn alloc(&mut self) -> CondId {
        let id = CondId(self.conds.len());
        self.conds.push(Cond::default());
        id
    }

    /// True iff the condition has been set.
    pub fn is_set(&self, id: CondId) -> bool {
        self.conds[id.0].set
    }

    /// Sets the condition. Idempotent. The system drains the resulting
    /// wakeups after the current program step.
    pub fn set(&mut self, id: CondId) {
        let c = &mut self.conds[id.0];
        if !c.set {
            c.set = true;
            self.pending.push_back(id);
        }
    }

    /// Registers `task` as waiting on `id` (for wakeup on set). Must not be
    /// called on an already-set condition.
    pub fn add_waiter(&mut self, id: CondId, task: TaskId) {
        debug_assert!(!self.conds[id.0].set, "waiting on an already-set cond");
        self.conds[id.0].waiters.push(task);
    }

    /// Removes a waiter registration (e.g. spin timeout fired first).
    pub fn remove_waiter(&mut self, id: CondId, task: TaskId) {
        self.conds[id.0].waiters.retain(|t| *t != task);
    }

    /// Pops the oldest set-but-undrained condition, if any.
    pub fn pop_pending(&mut self) -> Option<CondId> {
        self.pending.pop_front()
    }

    /// Moves the condition's registered waiters into `out` (clearing them),
    /// appending after whatever `out` already holds. Lets the caller reuse
    /// one buffer across drains instead of allocating per condition.
    pub fn take_waiters_into(&mut self, id: CondId, out: &mut Vec<TaskId>) {
        out.append(&mut self.conds[id.0].waiters);
    }

    /// Number of allocated conditions (diagnostics).
    pub fn len(&self) -> usize {
        self.conds.len()
    }

    pub fn is_empty(&self) -> bool {
        self.conds.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_starts_unset() {
        let mut t = CondTable::new();
        let c = t.alloc();
        assert!(!t.is_set(c));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn set_is_idempotent() {
        let mut t = CondTable::new();
        let c = t.alloc();
        t.set(c);
        t.set(c);
        assert!(t.is_set(c));
        assert_eq!(t.pop_pending(), Some(c));
        assert_eq!(t.pop_pending(), None);
    }

    #[test]
    fn waiters_delivered_once() {
        let mut t = CondTable::new();
        let c = t.alloc();
        t.add_waiter(c, TaskId(1));
        t.add_waiter(c, TaskId(2));
        t.set(c);
        assert_eq!(t.pop_pending(), Some(c));
        let mut waiters = Vec::new();
        t.take_waiters_into(c, &mut waiters);
        assert_eq!(waiters, vec![TaskId(1), TaskId(2)]);
        // Waiters were consumed.
        waiters.clear();
        t.take_waiters_into(c, &mut waiters);
        assert!(waiters.is_empty());
        assert_eq!(t.pop_pending(), None);
    }

    #[test]
    fn take_waiters_appends_to_existing_buffer() {
        let mut t = CondTable::new();
        let c = t.alloc();
        t.add_waiter(c, TaskId(2));
        let mut waiters = vec![TaskId(1)];
        t.take_waiters_into(c, &mut waiters);
        assert_eq!(waiters, vec![TaskId(1), TaskId(2)]);
    }

    #[test]
    fn remove_waiter_unregisters() {
        let mut t = CondTable::new();
        let c = t.alloc();
        t.add_waiter(c, TaskId(1));
        t.add_waiter(c, TaskId(2));
        t.remove_waiter(c, TaskId(1));
        t.set(c);
        let mut waiters = Vec::new();
        t.take_waiters_into(c, &mut waiters);
        assert_eq!(waiters, vec![TaskId(2)]);
    }

    #[test]
    fn multiple_conditions_drain_in_set_order() {
        let mut t = CondTable::new();
        let a = t.alloc();
        let b = t.alloc();
        t.set(b);
        t.set(a);
        assert_eq!(t.pop_pending(), Some(b));
        assert_eq!(t.pop_pending(), Some(a));
        assert_eq!(t.pop_pending(), None);
    }
}
