//! A CFS-like per-core run queue: tasks ordered by virtual runtime.

use crate::task::TaskId;
use std::collections::BTreeSet;

/// Run queue holding *runnable, not currently running* tasks ordered by
/// `(vruntime, TaskId)`. The currently running task is tracked separately by
/// the core, as in Linux.
#[derive(Debug, Default)]
pub struct RunQueue {
    set: BTreeSet<(u64, TaskId)>,
    /// Monotonic floor for vruntime normalization across queues.
    min_vruntime: u64,
}

impl RunQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued (runnable, not running) tasks.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Inserts a task keyed by its vruntime.
    pub fn enqueue(&mut self, vruntime: u64, task: TaskId) {
        let inserted = self.set.insert((vruntime, task));
        debug_assert!(inserted, "task {task} double-enqueued");
    }

    /// Removes a specific task (its stored key must match).
    pub fn dequeue(&mut self, vruntime: u64, task: TaskId) -> bool {
        self.set.remove(&(vruntime, task))
    }

    /// Pops the leftmost (minimum-vruntime) task.
    pub fn pop_min(&mut self) -> Option<(u64, TaskId)> {
        let first = *self.set.iter().next()?;
        self.set.remove(&first);
        Some(first)
    }

    /// Peeks at the leftmost task without removing it.
    pub fn peek_min(&self) -> Option<(u64, TaskId)> {
        self.set.iter().next().copied()
    }

    /// Largest vruntime present (used by `sched_yield`, which parks the
    /// yielder at the right edge of the tree).
    pub fn max_vruntime(&self) -> Option<u64> {
        self.set.iter().next_back().map(|(v, _)| *v)
    }

    /// Queue-wide minimum vruntime floor. Monotonically non-decreasing.
    pub fn min_vruntime(&self) -> u64 {
        self.min_vruntime
    }

    /// Raises the floor to `v` if larger (called as the leftmost task
    /// advances).
    pub fn advance_min_vruntime(&mut self, v: u64) {
        if v > self.min_vruntime {
            self.min_vruntime = v;
        }
    }

    /// Iterates over queued tasks in vruntime order.
    pub fn iter(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.set.iter().map(|(_, t)| *t)
    }

    /// True iff the given task is queued with the given key.
    pub fn contains(&self, vruntime: u64, task: TaskId) -> bool {
        self.set.contains(&(vruntime, task))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_vruntime_order() {
        let mut q = RunQueue::new();
        q.enqueue(30, TaskId(3));
        q.enqueue(10, TaskId(1));
        q.enqueue(20, TaskId(2));
        assert_eq!(q.pop_min(), Some((10, TaskId(1))));
        assert_eq!(q.pop_min(), Some((20, TaskId(2))));
        assert_eq!(q.pop_min(), Some((30, TaskId(3))));
        assert_eq!(q.pop_min(), None);
    }

    #[test]
    fn ties_broken_by_task_id() {
        let mut q = RunQueue::new();
        q.enqueue(5, TaskId(9));
        q.enqueue(5, TaskId(2));
        assert_eq!(q.pop_min(), Some((5, TaskId(2))));
        assert_eq!(q.pop_min(), Some((5, TaskId(9))));
    }

    #[test]
    fn dequeue_specific() {
        let mut q = RunQueue::new();
        q.enqueue(1, TaskId(1));
        q.enqueue(2, TaskId(2));
        assert!(q.dequeue(2, TaskId(2)));
        assert!(!q.dequeue(2, TaskId(2)));
        assert!(!q.dequeue(7, TaskId(1)), "wrong key must not remove");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn min_vruntime_is_monotonic() {
        let mut q = RunQueue::new();
        q.advance_min_vruntime(10);
        q.advance_min_vruntime(5);
        assert_eq!(q.min_vruntime(), 10);
        q.advance_min_vruntime(12);
        assert_eq!(q.min_vruntime(), 12);
    }

    #[test]
    fn max_vruntime_tracks_right_edge() {
        let mut q = RunQueue::new();
        assert_eq!(q.max_vruntime(), None);
        q.enqueue(10, TaskId(1));
        q.enqueue(40, TaskId(2));
        assert_eq!(q.max_vruntime(), Some(40));
    }

    #[test]
    fn iter_in_order() {
        let mut q = RunQueue::new();
        q.enqueue(3, TaskId(3));
        q.enqueue(1, TaskId(1));
        let order: Vec<TaskId> = q.iter().collect();
        assert_eq!(order, vec![TaskId(1), TaskId(3)]);
    }
}
