//! A CFS-like per-core run queue: tasks ordered by virtual runtime.

use crate::task::TaskId;

/// Run queue holding *runnable, not currently running* tasks ordered by
/// `(vruntime, TaskId)`. The currently running task is tracked separately by
/// the core, as in Linux.
///
/// Linux uses a red-black tree; per-core queues here hold a handful of
/// entries (threads-per-core, not threads-per-machine), so the backing
/// store is a sorted `Vec` kept in *descending* key order: the minimum
/// lives at the tail, making `pop_min` a plain `Vec::pop` and keeping the
/// steady-state event loop free of node allocations. Insertions memmove a
/// few 16-byte elements — far cheaper than pointer-chasing at these sizes.
#[derive(Debug, Default)]
pub struct RunQueue {
    /// `(vruntime, task)` sorted descending; the minimum key is `v.last()`.
    v: Vec<(u64, TaskId)>,
    /// Monotonic floor for vruntime normalization across queues.
    min_vruntime: u64,
}

impl RunQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued (runnable, not running) tasks.
    pub fn len(&self) -> usize {
        self.v.len()
    }

    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// Index at which `key` belongs in the descending order (the position
    /// after every strictly greater entry).
    fn pos_of(&self, key: (u64, TaskId)) -> usize {
        self.v.partition_point(|&e| e > key)
    }

    /// Inserts a task keyed by its vruntime.
    pub fn enqueue(&mut self, vruntime: u64, task: TaskId) {
        let key = (vruntime, task);
        let pos = self.pos_of(key);
        debug_assert!(self.v.get(pos) != Some(&key), "task {task} double-enqueued");
        self.v.insert(pos, key);
    }

    /// Removes a specific task (its stored key must match).
    pub fn dequeue(&mut self, vruntime: u64, task: TaskId) -> bool {
        let key = (vruntime, task);
        let pos = self.pos_of(key);
        if self.v.get(pos) == Some(&key) {
            self.v.remove(pos);
            true
        } else {
            false
        }
    }

    /// Pops the leftmost (minimum-vruntime) task.
    pub fn pop_min(&mut self) -> Option<(u64, TaskId)> {
        self.v.pop()
    }

    /// Peeks at the leftmost task without removing it.
    pub fn peek_min(&self) -> Option<(u64, TaskId)> {
        self.v.last().copied()
    }

    /// Largest vruntime present (used by `sched_yield`, which parks the
    /// yielder at the right edge of the tree).
    pub fn max_vruntime(&self) -> Option<u64> {
        self.v.first().map(|(v, _)| *v)
    }

    /// Queue-wide minimum vruntime floor. Monotonically non-decreasing.
    pub fn min_vruntime(&self) -> u64 {
        self.min_vruntime
    }

    /// Raises the floor to `v` if larger (called as the leftmost task
    /// advances).
    pub fn advance_min_vruntime(&mut self, v: u64) {
        if v > self.min_vruntime {
            self.min_vruntime = v;
        }
    }

    /// Iterates over queued tasks in vruntime order.
    pub fn iter(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.v.iter().rev().map(|(_, t)| *t)
    }

    /// Iterates over queued `(vruntime, task)` keys in ascending order
    /// (the queue's pop order). Used by the invariant checker to diff the
    /// queue against a fresh scan of the task table.
    pub fn entries(&self) -> impl Iterator<Item = (u64, TaskId)> + '_ {
        self.v.iter().rev().copied()
    }

    /// True iff the given task is queued with the given key.
    pub fn contains(&self, vruntime: u64, task: TaskId) -> bool {
        let key = (vruntime, task);
        self.v.get(self.pos_of(key)) == Some(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_vruntime_order() {
        let mut q = RunQueue::new();
        q.enqueue(30, TaskId(3));
        q.enqueue(10, TaskId(1));
        q.enqueue(20, TaskId(2));
        assert_eq!(q.pop_min(), Some((10, TaskId(1))));
        assert_eq!(q.pop_min(), Some((20, TaskId(2))));
        assert_eq!(q.pop_min(), Some((30, TaskId(3))));
        assert_eq!(q.pop_min(), None);
    }

    #[test]
    fn ties_broken_by_task_id() {
        let mut q = RunQueue::new();
        q.enqueue(5, TaskId(9));
        q.enqueue(5, TaskId(2));
        assert_eq!(q.pop_min(), Some((5, TaskId(2))));
        assert_eq!(q.pop_min(), Some((5, TaskId(9))));
    }

    #[test]
    fn dequeue_specific() {
        let mut q = RunQueue::new();
        q.enqueue(1, TaskId(1));
        q.enqueue(2, TaskId(2));
        assert!(q.dequeue(2, TaskId(2)));
        assert!(!q.dequeue(2, TaskId(2)));
        assert!(!q.dequeue(7, TaskId(1)), "wrong key must not remove");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn min_vruntime_is_monotonic() {
        let mut q = RunQueue::new();
        q.advance_min_vruntime(10);
        q.advance_min_vruntime(5);
        assert_eq!(q.min_vruntime(), 10);
        q.advance_min_vruntime(12);
        assert_eq!(q.min_vruntime(), 12);
    }

    #[test]
    fn max_vruntime_tracks_right_edge() {
        let mut q = RunQueue::new();
        assert_eq!(q.max_vruntime(), None);
        q.enqueue(10, TaskId(1));
        q.enqueue(40, TaskId(2));
        assert_eq!(q.max_vruntime(), Some(40));
    }

    #[test]
    fn iter_in_order() {
        let mut q = RunQueue::new();
        q.enqueue(3, TaskId(3));
        q.enqueue(1, TaskId(1));
        let order: Vec<TaskId> = q.iter().collect();
        assert_eq!(order, vec![TaskId(1), TaskId(3)]);
    }

    #[test]
    fn contains_requires_exact_key() {
        let mut q = RunQueue::new();
        q.enqueue(7, TaskId(4));
        assert!(q.contains(7, TaskId(4)));
        assert!(!q.contains(8, TaskId(4)));
        assert!(!q.contains(7, TaskId(5)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    /// One step of an arbitrary interleaving driven against both the sorted
    /// vector and a `BTreeSet` reference model.
    #[derive(Debug, Clone)]
    enum Op {
        /// Enqueue task `id` at `vruntime` (skipped if already queued).
        Enqueue { id: usize, vruntime: u64 },
        /// Dequeue the queued task at index `pick % len`.
        Dequeue { pick: usize },
        /// Pop the minimum, then advance the floor to its vruntime — the
        /// `account_and_settle` pattern.
        PopMinAndAdvance,
        /// Re-queue the minimum at the right edge (`max_vruntime + 1`), as
        /// `sched_yield` parks the yielder.
        Yield,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0usize..24, 0u64..10_000).prop_map(|(id, vruntime)| Op::Enqueue { id, vruntime }),
            (0usize..1_000_000).prop_map(|pick| Op::Dequeue { pick }),
            Just(Op::PopMinAndAdvance),
            Just(Op::Yield),
        ]
    }

    proptest! {
        /// The sorted-vector queue behaves exactly like an ordered-set
        /// model, and the `min_vruntime` floor never decreases, under
        /// arbitrary enqueue/dequeue/pop/yield interleavings.
        #[test]
        fn matches_btree_model_and_floor_is_monotone(
            ops in proptest::collection::vec(op_strategy(), 1..400)
        ) {
            let mut q = RunQueue::new();
            let mut model: BTreeSet<(u64, TaskId)> = BTreeSet::new();
            let mut last_floor = q.min_vruntime();
            for op in ops {
                match op {
                    Op::Enqueue { id, vruntime } => {
                        let t = TaskId(id);
                        if !model.iter().any(|(_, m)| *m == t) {
                            q.enqueue(vruntime, t);
                            model.insert((vruntime, t));
                        }
                    }
                    Op::Dequeue { pick } => {
                        if !model.is_empty() {
                            let key = *model.iter().nth(pick % model.len()).unwrap();
                            prop_assert!(q.dequeue(key.0, key.1));
                            model.remove(&key);
                            prop_assert!(!q.contains(key.0, key.1));
                        }
                    }
                    Op::PopMinAndAdvance => {
                        let expect = model.iter().next().copied();
                        if let Some(key) = expect {
                            model.remove(&key);
                        }
                        let got = q.pop_min();
                        prop_assert_eq!(got, expect);
                        if let Some((v, _)) = got {
                            q.advance_min_vruntime(v);
                        }
                    }
                    Op::Yield => {
                        if let Some((v, t)) = q.peek_min() {
                            let edge = q.max_vruntime().unwrap().saturating_add(1);
                            prop_assert!(q.dequeue(v, t));
                            model.remove(&(v, t));
                            q.enqueue(edge, t);
                            model.insert((edge, t));
                            // The yielder really parks at the right edge:
                            // nothing is ordered after it.
                            prop_assert_eq!(q.iter().last(), Some(t));
                            prop_assert_eq!(q.max_vruntime(), Some(edge));
                        }
                    }
                }
                // Full-queue equivalence with the ordered-set model.
                let ours: Vec<TaskId> = q.iter().collect();
                let theirs: Vec<TaskId> = model.iter().map(|(_, t)| *t).collect();
                prop_assert_eq!(ours, theirs);
                prop_assert_eq!(q.len(), model.len());
                prop_assert_eq!(q.peek_min(), model.iter().next().copied());
                prop_assert_eq!(
                    q.max_vruntime(),
                    model.iter().next_back().map(|(v, _)| *v)
                );
                // Monotone floor.
                prop_assert!(q.min_vruntime() >= last_floor, "floor regressed");
                last_floor = q.min_vruntime();
            }
        }
    }
}
