//! Chrome trace-event JSON exporter.
//!
//! Produces the `{"traceEvents": [...]}` object format understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev). Layout:
//!
//! - pid 1 ("cores"): one thread track per core (`cpu0`, `cpu1`, ...)
//!   carrying `X` complete events for every task occupancy interval,
//!   `i` instant events for wakes/sleeps/preemptions/migrations,
//!   balancer activations and server-request lifecycle points, and `C`
//!   counter tracks for core-level speed samples.
//! - pid 2 ("tasks"): `C` counter tracks for per-task speed samples.
//! - async nestable `b`/`e` spans (pid 1) for barrier episodes, one id
//!   per episode condition, so barrier wait epochs render as horizontal
//!   bars above the core tracks.
//!
//! Timestamps are microseconds with nanosecond precision (three decimal
//! places), matching the trace-event spec's `ts` unit.
//!
//! The exporter **streams**: [`export_chrome_to`] writes each event
//! through a buffered writer as it is produced, so exporting a
//! multi-gigabyte server trace never materializes the whole document in
//! memory. [`export_chrome`] is a convenience wrapper that collects the
//! same byte stream into a `String`.

use crate::event::TraceEvent;
use crate::sink::TraceBuffer;
use speedbal_sim::SimTime;
use std::fmt::Write as _;
use std::io::{self, Write};

const CORES_PID: u64 = 1;
const TASKS_PID: u64 = 2;

/// Escapes a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a SimTime as trace-event microseconds.
fn ts(t: SimTime) -> String {
    format!("{:.3}", t.as_nanos() as f64 / 1_000.0)
}

/// Formats an f64 as JSON (finite values only; NaN/inf clamp to 0).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "0".to_string()
    }
}

/// Streams trace events as they are produced: one JSON object per line,
/// comma-separated, no whole-document accumulation.
struct Events<W: Write> {
    w: W,
    first: bool,
}

impl<W: Write> Events<W> {
    fn push(&mut self, json_object_body: String) -> io::Result<()> {
        if self.first {
            self.first = false;
        } else {
            self.w.write_all(b",\n")?;
        }
        write!(self.w, "{{{json_object_body}}}")
    }

    fn meta(&mut self, pid: u64, tid: Option<u64>, name: &str, value: &str) -> io::Result<()> {
        let tid_part = tid.map(|t| format!(",\"tid\":{t}")).unwrap_or_default();
        self.push(format!(
            "\"ph\":\"M\",\"pid\":{pid}{tid_part},\"name\":\"{name}\",\
             \"args\":{{\"name\":\"{}\"}}",
            esc(value)
        ))
    }
}

/// Renders the whole buffer as a Chrome trace-event JSON document,
/// streamed through a buffered chunked writer. The byte stream is
/// identical to what [`export_chrome`] returns.
pub fn export_chrome_to<W: Write>(buf: &TraceBuffer, writer: W) -> io::Result<()> {
    let mut w = io::BufWriter::with_capacity(1 << 16, writer);
    w.write_all(b"{\"traceEvents\":[\n")?;
    let mut ev = Events { w, first: true };

    ev.meta(CORES_PID, None, "process_name", "cores")?;
    ev.meta(TASKS_PID, None, "process_name", "tasks")?;
    for c in 0..buf.n_cores() {
        ev.meta(CORES_PID, Some(c as u64), "thread_name", &format!("cpu{c}"))?;
    }

    // Open occupancy interval per core: (task, dispatch time).
    let mut open: Vec<Option<(usize, SimTime)>> = vec![None; buf.n_cores()];
    let mut named_task_tracks: Vec<bool> = Vec::new();

    for rec in buf.records() {
        let core = rec.core.0 as u64;
        match &rec.event {
            TraceEvent::Dispatch { task } => {
                if rec.core.0 < open.len() {
                    open[rec.core.0] = Some((*task, rec.time));
                }
            }
            TraceEvent::Desched { task, .. } => {
                if let Some(Some((t, since))) = open.get(rec.core.0).copied() {
                    if t == *task {
                        open[rec.core.0] = None;
                        let dur = rec.time.saturating_since(since);
                        ev.push(format!(
                            "\"ph\":\"X\",\"pid\":{CORES_PID},\"tid\":{core},\
                             \"ts\":{},\"dur\":{:.3},\"name\":\"{}\",\"cat\":\"run\"",
                            ts(since),
                            dur.as_nanos() as f64 / 1_000.0,
                            esc(&buf.task_name(*task)),
                        ))?;
                    }
                }
            }
            TraceEvent::Preempt { task, by } => {
                ev.push(format!(
                    "\"ph\":\"i\",\"pid\":{CORES_PID},\"tid\":{core},\"ts\":{},\
                     \"s\":\"t\",\"name\":\"preempt {} by {}\",\"cat\":\"sched\"",
                    ts(rec.time),
                    esc(&buf.task_name(*task)),
                    esc(&buf.task_name(*by)),
                ))?;
            }
            TraceEvent::Wake { task } => {
                ev.push(format!(
                    "\"ph\":\"i\",\"pid\":{CORES_PID},\"tid\":{core},\"ts\":{},\
                     \"s\":\"t\",\"name\":\"wake {}\",\"cat\":\"sched\"",
                    ts(rec.time),
                    esc(&buf.task_name(*task)),
                ))?;
            }
            TraceEvent::Sleep { task } => {
                ev.push(format!(
                    "\"ph\":\"i\",\"pid\":{CORES_PID},\"tid\":{core},\"ts\":{},\
                     \"s\":\"t\",\"name\":\"sleep {}\",\"cat\":\"sched\"",
                    ts(rec.time),
                    esc(&buf.task_name(*task)),
                ))?;
            }
            TraceEvent::Exit { task } => {
                ev.push(format!(
                    "\"ph\":\"i\",\"pid\":{CORES_PID},\"tid\":{core},\"ts\":{},\
                     \"s\":\"t\",\"name\":\"exit {}\",\"cat\":\"sched\"",
                    ts(rec.time),
                    esc(&buf.task_name(*task)),
                ))?;
            }
            TraceEvent::Migrate {
                task,
                from,
                to,
                tier,
                reason,
            } => {
                ev.push(format!(
                    "\"ph\":\"i\",\"pid\":{CORES_PID},\"tid\":{},\"ts\":{},\
                     \"s\":\"p\",\"name\":\"migrate {}\",\"cat\":\"migration\",\
                     \"args\":{{\"from\":\"cpu{}\",\"to\":\"cpu{}\",\
                     \"tier\":\"{:?}\",\"reason\":\"{}\"}}",
                    to.0,
                    ts(rec.time),
                    esc(&buf.task_name(*task)),
                    from.0,
                    to.0,
                    tier,
                    reason.label(),
                ))?;
            }
            TraceEvent::SpeedSample { task, speed } => match task {
                Some(t) => {
                    if named_task_tracks.len() <= *t {
                        named_task_tracks.resize(*t + 1, false);
                    }
                    if !named_task_tracks[*t] {
                        named_task_tracks[*t] = true;
                        ev.meta(
                            TASKS_PID,
                            Some(*t as u64),
                            "thread_name",
                            &buf.task_name(*t),
                        )?;
                    }
                    ev.push(format!(
                        "\"ph\":\"C\",\"pid\":{TASKS_PID},\"tid\":{t},\"ts\":{},\
                         \"name\":\"speed {}\",\"args\":{{\"speed\":{}}}",
                        ts(rec.time),
                        esc(&buf.task_name(*t)),
                        num(*speed),
                    ))?;
                }
                None => {
                    ev.push(format!(
                        "\"ph\":\"C\",\"pid\":{CORES_PID},\"tid\":{core},\"ts\":{},\
                         \"name\":\"speed cpu{core}\",\"args\":{{\"speed\":{}}}",
                        ts(rec.time),
                        num(*speed),
                    ))?;
                }
            },
            TraceEvent::FreqStep { ratio } => {
                ev.push(format!(
                    "\"ph\":\"C\",\"pid\":{CORES_PID},\"tid\":{core},\"ts\":{},\
                     \"name\":\"freq cpu{core}\",\"args\":{{\"ratio\":{}}}",
                    ts(rec.time),
                    num(*ratio),
                ))?;
            }
            TraceEvent::BalancerActivation {
                policy,
                local,
                global,
                outcome,
                jitter,
            } => {
                ev.push(format!(
                    "\"ph\":\"i\",\"pid\":{CORES_PID},\"tid\":{core},\"ts\":{},\
                     \"s\":\"t\",\"name\":\"{policy} {}\",\"cat\":\"balancer\",\
                     \"args\":{{\"local\":{},\"global\":{},\"jitter_ms\":{}}}",
                    ts(rec.time),
                    outcome.label(),
                    num(*local),
                    num(*global),
                    num(jitter.as_millis_f64()),
                ))?;
            }
            TraceEvent::BarrierArrive {
                task,
                cond,
                episode,
                arrived,
                parties,
            } => {
                // The first arriver opens the episode span.
                if *arrived == 1 {
                    ev.push(format!(
                        "\"ph\":\"b\",\"pid\":{CORES_PID},\"tid\":{core},\"ts\":{},\
                         \"id\":{cond},\"name\":\"barrier ep {episode}\",\
                         \"cat\":\"barrier\"",
                        ts(rec.time),
                    ))?;
                }
                ev.push(format!(
                    "\"ph\":\"i\",\"pid\":{CORES_PID},\"tid\":{core},\"ts\":{},\
                     \"s\":\"t\",\"name\":\"arrive {} ({arrived}/{parties})\",\
                     \"cat\":\"barrier\"",
                    ts(rec.time),
                    esc(&buf.task_name(*task)),
                ))?;
            }
            TraceEvent::BarrierRelease { cond, episode, .. } => {
                ev.push(format!(
                    "\"ph\":\"e\",\"pid\":{CORES_PID},\"tid\":{core},\"ts\":{},\
                     \"id\":{cond},\"name\":\"barrier ep {episode}\",\
                     \"cat\":\"barrier\"",
                    ts(rec.time),
                ))?;
            }
            TraceEvent::ProcFault {
                task,
                op,
                kind,
                attempt,
                retrying,
            } => {
                let who = match task {
                    Some(t) => buf.task_name(*t),
                    None => "process".to_string(),
                };
                ev.push(format!(
                    "\"ph\":\"i\",\"pid\":{CORES_PID},\"tid\":{core},\"ts\":{},\
                     \"s\":\"t\",\"name\":\"fault {} {}\",\"cat\":\"fault\",\
                     \"args\":{{\"target\":\"{}\",\"kind\":\"{}\",\
                     \"attempt\":{attempt},\"retrying\":{retrying}}}",
                    ts(rec.time),
                    op.label(),
                    kind.label(),
                    esc(&who),
                    kind.label(),
                ))?;
            }
            TraceEvent::Quarantined { task, failures } => {
                ev.push(format!(
                    "\"ph\":\"i\",\"pid\":{CORES_PID},\"tid\":{core},\"ts\":{},\
                     \"s\":\"p\",\"name\":\"quarantine {}\",\"cat\":\"fault\",\
                     \"args\":{{\"failures\":{failures}}}",
                    ts(rec.time),
                    esc(&buf.task_name(*task)),
                ))?;
            }
            TraceEvent::RequestArrival {
                request,
                arrival,
                queued,
            } => {
                ev.push(format!(
                    "\"ph\":\"i\",\"pid\":{CORES_PID},\"tid\":{core},\"ts\":{},\
                     \"s\":\"t\",\"name\":\"req {request} arrive\",\
                     \"cat\":\"request\",\"args\":{{\"arrival_us\":{},\
                     \"queued\":{queued}}}",
                    ts(rec.time),
                    ts(*arrival),
                ))?;
            }
            TraceEvent::RequestDispatch {
                request,
                subtask,
                wait,
            } => {
                ev.push(format!(
                    "\"ph\":\"i\",\"pid\":{CORES_PID},\"tid\":{core},\"ts\":{},\
                     \"s\":\"t\",\"name\":\"serve req {request}.{subtask}\",\
                     \"cat\":\"request\",\"args\":{{\"wait_ms\":{}}}",
                    ts(rec.time),
                    num(wait.as_millis_f64()),
                ))?;
            }
            TraceEvent::RequestComplete { request, latency } => {
                ev.push(format!(
                    "\"ph\":\"i\",\"pid\":{CORES_PID},\"tid\":{core},\"ts\":{},\
                     \"s\":\"t\",\"name\":\"req {request} done\",\
                     \"cat\":\"request\",\"args\":{{\"latency_ms\":{}}}",
                    ts(rec.time),
                    num(latency.as_millis_f64()),
                ))?;
            }
            TraceEvent::RequestDrop { request, reason } => {
                ev.push(format!(
                    "\"ph\":\"i\",\"pid\":{CORES_PID},\"tid\":{core},\"ts\":{},\
                     \"s\":\"p\",\"name\":\"drop req {request}\",\
                     \"cat\":\"request\",\"args\":{{\"reason\":\"{}\"}}",
                    ts(rec.time),
                    reason.label(),
                ))?;
            }
        }
    }

    // Close any occupancy interval still open at the end of the trace.
    let end = buf.end_time();
    for (c, slot) in open.iter().enumerate() {
        if let Some((task, since)) = slot {
            let dur = end.saturating_since(*since);
            ev.push(format!(
                "\"ph\":\"X\",\"pid\":{CORES_PID},\"tid\":{c},\"ts\":{},\
                 \"dur\":{:.3},\"name\":\"{}\",\"cat\":\"run\"",
                ts(*since),
                dur.as_nanos() as f64 / 1_000.0,
                esc(&buf.task_name(*task)),
            ))?;
        }
    }

    let mut w = ev.w;
    if !ev.first {
        w.write_all(b"\n")?;
    }
    w.write_all(b"]}\n")?;
    w.flush()
}

/// Renders the whole buffer as a Chrome trace-event JSON document in
/// memory. Prefer [`export_chrome_to`] for large traces.
pub fn export_chrome(buf: &TraceBuffer) -> String {
    let mut out = Vec::new();
    export_chrome_to(buf, &mut out).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("exporter emits UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MigrationReason;
    use speedbal_machine::{CoreId, DomainLevel};
    use speedbal_sim::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn escapes_json_strings() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn emits_complete_events_for_occupancy() {
        let mut buf = TraceBuffer::new();
        buf.task_spawned(0, "w0", SimTime::ZERO);
        buf.record(t(10), CoreId(0), TraceEvent::Dispatch { task: 0 });
        buf.record(
            t(35),
            CoreId(0),
            TraceEvent::Desched {
                task: 0,
                ran: SimDuration::from_micros(25),
            },
        );
        let json = export_chrome(&buf);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":10.000"));
        assert!(json.contains("\"dur\":25.000"));
        assert!(json.contains("\"name\":\"w0\""));
    }

    #[test]
    fn closes_trailing_open_interval() {
        let mut buf = TraceBuffer::new();
        buf.task_spawned(0, "w0", SimTime::ZERO);
        buf.record(t(5), CoreId(0), TraceEvent::Dispatch { task: 0 });
        buf.record(t(50), CoreId(1), TraceEvent::Wake { task: 1 });
        let json = export_chrome(&buf);
        assert!(
            json.contains("\"dur\":45.000"),
            "open interval closed at end"
        );
    }

    #[test]
    fn migration_event_carries_reason() {
        let mut buf = TraceBuffer::new();
        buf.record(
            t(7),
            CoreId(1),
            TraceEvent::Migrate {
                task: 3,
                from: CoreId(0),
                to: CoreId(1),
                tier: DomainLevel::Cache,
                reason: MigrationReason::SpeedPull {
                    local_speed: 1.0,
                    remote_speed: 0.5,
                    global_speed: 0.7,
                },
            },
        );
        let json = export_chrome(&buf);
        assert!(json.contains("\"cat\":\"migration\""));
        assert!(json.contains("\"reason\":\"speed-pull\""));
    }

    #[test]
    fn barrier_spans_pair_up() {
        let mut buf = TraceBuffer::new();
        buf.record(
            t(1),
            CoreId(0),
            TraceEvent::BarrierArrive {
                task: 0,
                cond: 9,
                episode: 0,
                arrived: 1,
                parties: 2,
            },
        );
        buf.record(
            t(4),
            CoreId(1),
            TraceEvent::BarrierRelease {
                task: 1,
                cond: 9,
                episode: 0,
            },
        );
        let json = export_chrome(&buf);
        assert!(json.contains("\"ph\":\"b\""));
        assert!(json.contains("\"ph\":\"e\""));
        assert!(json.contains("\"id\":9"));
    }

    #[test]
    fn fault_events_export() {
        use crate::event::{ProcFaultKind, ProcOp};
        let mut buf = TraceBuffer::new();
        buf.task_spawned(3, "tid103", SimTime::ZERO);
        buf.record(
            t(5),
            CoreId(1),
            TraceEvent::ProcFault {
                task: Some(3),
                op: ProcOp::SetAffinity,
                kind: ProcFaultKind::PermissionDenied,
                attempt: 2,
                retrying: false,
            },
        );
        buf.record(
            t(9),
            CoreId(1),
            TraceEvent::Quarantined {
                task: 3,
                failures: 3,
            },
        );
        let json = export_chrome(&buf);
        assert!(json.contains("\"cat\":\"fault\""));
        assert!(json.contains("fault set-affinity eperm"));
        assert!(json.contains("\"attempt\":2"));
        assert!(json.contains("quarantine tid103"));
    }

    #[test]
    fn request_events_export() {
        use crate::event::RequestDropReason;
        let mut buf = TraceBuffer::new();
        buf.record(
            t(10),
            CoreId(0),
            TraceEvent::RequestArrival {
                request: 7,
                arrival: t(8),
                queued: 3,
            },
        );
        buf.record(
            t(12),
            CoreId(1),
            TraceEvent::RequestDispatch {
                request: 7,
                subtask: 1,
                wait: SimDuration::from_micros(4000),
            },
        );
        buf.record(
            t(20),
            CoreId(1),
            TraceEvent::RequestComplete {
                request: 7,
                latency: SimDuration::from_micros(12_000),
            },
        );
        buf.record(
            t(21),
            CoreId(0),
            TraceEvent::RequestDrop {
                request: 8,
                reason: RequestDropReason::QueueFull,
            },
        );
        let json = export_chrome(&buf);
        assert!(json.contains("\"cat\":\"request\""));
        assert!(json.contains("req 7 arrive"));
        assert!(json.contains("serve req 7.1"));
        assert!(json.contains("req 7 done"));
        assert!(json.contains("\"latency_ms\":12.000000"));
        assert!(json.contains("drop req 8"));
        assert!(json.contains("\"reason\":\"queue-full\""));
    }

    #[test]
    fn document_shape_is_wellformed() {
        let buf = TraceBuffer::new();
        let json = export_chrome(&buf);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn streaming_writer_matches_string_export() {
        let mut buf = TraceBuffer::new();
        buf.task_spawned(0, "w0", SimTime::ZERO);
        buf.record(t(1), CoreId(0), TraceEvent::Dispatch { task: 0 });
        buf.record(
            t(9),
            CoreId(0),
            TraceEvent::Desched {
                task: 0,
                ran: SimDuration::from_micros(8),
            },
        );
        let mut streamed = Vec::new();
        export_chrome_to(&buf, &mut streamed).unwrap();
        assert_eq!(String::from_utf8(streamed).unwrap(), export_chrome(&buf));
    }
}
