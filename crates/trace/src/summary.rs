//! Plain-text trace summary: the aggregate view (counters, migration
//! histograms, per-core speed statistics, per-task time-in-state) rendered
//! as a human-readable report.

use crate::event::{MigrationReason, ProcFaultKind, RequestDropReason};
use crate::sink::TraceBuffer;
use speedbal_machine::{CoreId, DomainLevel};
use std::fmt::Write as _;

/// Renders the buffer's aggregates as a multi-line report.
pub fn render_summary(buf: &TraceBuffer) -> String {
    let mut out = String::new();
    let c = buf.counters();

    let span = match buf.start_time() {
        Some(start) => buf.end_time().saturating_since(start),
        None => speedbal_sim::SimDuration::ZERO,
    };
    let _ = writeln!(out, "trace summary ({span} of simulated time)");
    if let Some(tag) = buf.config().ordering_tag.as_deref() {
        let _ = writeln!(out, "  same-instant ordering: {tag} (non-FIFO fuzz run)");
    }
    let _ = writeln!(
        out,
        "  records retained {}  dropped {}",
        buf.len(),
        buf.dropped()
    );
    if buf.sampled_out() > 0 {
        let _ = writeln!(
            out,
            "  sampled out {} (ctx-switch/speed-sample records withheld by \
             the sampling rate; aggregates above still cover them)",
            buf.sampled_out()
        );
    }
    let _ = writeln!(
        out,
        "  dispatches {}  descheds {}  preemptions {}",
        c.dispatches, c.descheds, c.preemptions
    );
    let _ = writeln!(
        out,
        "  wakes {}  sleeps {}  exits {}",
        c.wakes, c.sleeps, c.exits
    );
    let _ = writeln!(
        out,
        "  speed samples {}  balancer activations {}",
        c.speed_samples, c.balancer_activations
    );
    let _ = writeln!(
        out,
        "  barrier arrivals {}  releases {}",
        c.barrier_arrivals, c.barrier_releases
    );

    if c.freq_steps > 0 {
        let _ = writeln!(out, "  freq steps {}", c.freq_steps);
    }

    if c.proc_faults > 0 || c.quarantines > 0 {
        let _ = write!(
            out,
            "  proc faults {} (retried {})",
            c.proc_faults, c.proc_retries
        );
        for (i, label) in ProcFaultKind::ALL_LABELS.iter().enumerate() {
            if c.proc_faults_by_kind[i] > 0 {
                let _ = write!(out, " {}={}", label, c.proc_faults_by_kind[i]);
            }
        }
        let _ = writeln!(out, "  quarantines {}", c.quarantines);
    }

    if c.request_arrivals > 0 || c.request_drops > 0 {
        let _ = write!(
            out,
            "  requests: arrived {}  dispatched {}  completed {}  dropped {}",
            c.request_arrivals, c.request_dispatches, c.request_completions, c.request_drops
        );
        for (i, label) in RequestDropReason::ALL_LABELS.iter().enumerate() {
            if c.request_drops_by_reason[i] > 0 {
                let _ = write!(out, " {}={}", label, c.request_drops_by_reason[i]);
            }
        }
        let _ = writeln!(out);
        let lat = buf.request_latency_stats();
        if lat.count() > 0 {
            let _ = writeln!(
                out,
                "  request latency (ms): n={} mean={:.3} max={:.3}  queue wait \
                 mean={:.3}",
                lat.count(),
                lat.mean(),
                lat.max(),
                buf.request_wait_stats().mean()
            );
        }
    }

    let _ = writeln!(out, "migrations: {}", c.migrations);
    if c.migrations > 0 {
        let _ = write!(out, "  by tier:");
        for (i, level) in DomainLevel::ALL.iter().enumerate() {
            if c.migrations_by_tier[i] > 0 {
                let _ = write!(out, " {:?}={}", level, c.migrations_by_tier[i]);
            }
        }
        let _ = writeln!(out);
        let _ = write!(out, "  by reason:");
        for (i, label) in MigrationReason::ALL_LABELS.iter().enumerate() {
            if c.migrations_by_reason[i] > 0 {
                let _ = write!(out, " {}={}", label, c.migrations_by_reason[i]);
            }
        }
        let _ = writeln!(out);
    }

    let mut wrote_header = false;
    for core in 0..buf.n_cores() {
        let s = buf.core_speed_stats(CoreId(core));
        if s.count() == 0 {
            continue;
        }
        if !wrote_header {
            let _ = writeln!(out, "core speed (utilization) samples:");
            wrote_header = true;
        }
        let _ = writeln!(
            out,
            "  cpu{core}: n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            s.count(),
            s.mean(),
            s.stddev(),
            s.min(),
            s.max()
        );
    }

    wrote_header = false;
    for task in 0..buf.n_tasks() {
        let tis = buf.time_in_state(task);
        let speed = buf.task_speed_stats(task);
        if tis == Default::default() && speed.count() == 0 {
            continue;
        }
        if !wrote_header {
            let _ = writeln!(out, "tasks:");
            wrote_header = true;
        }
        let _ = write!(
            out,
            "  {}: run {} runnable {} blocked {}",
            buf.task_name(task),
            tis.running,
            tis.runnable,
            tis.blocked
        );
        if speed.count() > 0 {
            let _ = write!(
                out,
                "  speed mean={:.3} sd={:.3}",
                speed.mean(),
                speed.stddev()
            );
        }
        let _ = writeln!(out);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use speedbal_sim::{SimDuration, SimTime};

    #[test]
    fn summary_mentions_key_sections() {
        let mut buf = TraceBuffer::new();
        buf.task_spawned(0, "w0", SimTime::ZERO);
        buf.record(
            SimTime::from_millis(1),
            CoreId(0),
            TraceEvent::Dispatch { task: 0 },
        );
        buf.record(
            SimTime::from_millis(5),
            CoreId(0),
            TraceEvent::Desched {
                task: 0,
                ran: SimDuration::from_millis(4),
            },
        );
        buf.record(
            SimTime::from_millis(5),
            CoreId(0),
            TraceEvent::SpeedSample {
                task: None,
                speed: 0.8,
            },
        );
        let text = render_summary(&buf);
        assert!(text.contains("trace summary"));
        assert!(text.contains("dispatches 1"));
        assert!(text.contains("cpu0:"));
        assert!(text.contains("w0: run 4.000ms"));
    }

    #[test]
    fn faults_render_when_present() {
        use crate::event::{ProcFaultKind, ProcOp};
        let mut buf = TraceBuffer::new();
        buf.record(
            SimTime::from_millis(1),
            CoreId(0),
            TraceEvent::ProcFault {
                task: Some(5),
                op: ProcOp::ReadCpuTime,
                kind: ProcFaultKind::Vanished,
                attempt: 1,
                retrying: false,
            },
        );
        buf.record(
            SimTime::from_millis(2),
            CoreId(0),
            TraceEvent::Quarantined {
                task: 5,
                failures: 3,
            },
        );
        let text = render_summary(&buf);
        assert!(text.contains("proc faults 1"));
        assert!(text.contains("vanished=1"));
        assert!(text.contains("quarantines 1"));
        // And the section is absent on clean traces.
        assert!(!render_summary(&TraceBuffer::new()).contains("proc faults"));
    }

    #[test]
    fn request_section_renders_when_present() {
        use crate::event::RequestDropReason;
        let mut buf = TraceBuffer::new();
        buf.record(
            SimTime::from_millis(1),
            CoreId(0),
            TraceEvent::RequestArrival {
                request: 0,
                arrival: SimTime::from_millis(1),
                queued: 1,
            },
        );
        buf.record(
            SimTime::from_millis(3),
            CoreId(0),
            TraceEvent::RequestComplete {
                request: 0,
                latency: SimDuration::from_millis(2),
            },
        );
        buf.record(
            SimTime::from_millis(4),
            CoreId(0),
            TraceEvent::RequestDrop {
                request: 1,
                reason: RequestDropReason::ShedTimeout,
            },
        );
        let text = render_summary(&buf);
        assert!(text.contains("requests: arrived 1"));
        assert!(text.contains("shed-timeout=1"));
        assert!(text.contains("request latency (ms): n=1"));
        // And the section is absent without server traffic.
        assert!(!render_summary(&TraceBuffer::new()).contains("requests:"));
    }

    #[test]
    fn empty_buffer_renders() {
        let text = render_summary(&TraceBuffer::new());
        assert!(text.contains("migrations: 0"));
    }
}
