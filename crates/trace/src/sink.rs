//! The trace sink: a bounded ring of [`TraceRecord`]s plus aggregates
//! (counters, migration histograms, per-task time-in-state, per-core and
//! per-task speed statistics) maintained incrementally at record time, so
//! summaries survive even when the ring has wrapped.

use crate::event::{MigrationReason, ProcFaultKind, RequestDropReason, TraceEvent, TraceRecord};
use speedbal_machine::{CoreId, DomainLevel};
use speedbal_sim::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Sink tunables.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Maximum records retained; older records are dropped (and counted)
    /// once the ring is full. Aggregates keep covering dropped records.
    pub capacity: usize,
    /// Period of the built-in per-task / per-core speed sampler the
    /// simulator arms while tracing (the paper samples /proc every 100 ms).
    pub sample_interval: SimDuration,
    /// Fraction of *high-volume* records (context switches and speed
    /// samples — `Dispatch`, `Desched`, `SpeedSample`) retained in the
    /// ring. Everything else (migrations, barriers, faults, ...) is always
    /// kept, and aggregates always cover sampled-out records, so summaries
    /// stay exact. `1.0` (the default) disables sampling. The decision is
    /// a deterministic function of `sample_seed` and the record sequence,
    /// so two identical runs sample identically.
    pub sample_rate: f64,
    /// Seed for the deterministic sampling decision stream.
    pub sample_seed: u64,
    /// Same-instant ordering-policy tag of the traced run, rendered in
    /// the summary header. `None` (the default, and every FIFO run) adds
    /// nothing — committed FIFO summaries stay byte-identical.
    pub ordering_tag: Option<String>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: 1 << 20,
            sample_interval: SimDuration::from_millis(100),
            sample_rate: 1.0,
            sample_seed: 0,
            ordering_tag: None,
        }
    }
}

/// Counts maintained for every recorded event (never dropped).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceCounters {
    /// Context switches in.
    pub dispatches: u64,
    /// Context switches out.
    pub descheds: u64,
    /// Forced reschedules by a higher-priority wakeup.
    pub preemptions: u64,
    /// Blocked tasks becoming runnable.
    pub wakes: u64,
    /// Tasks leaving the runnable set.
    pub sleeps: u64,
    /// Task exits.
    pub exits: u64,
    /// Cross-core moves (all reasons).
    pub migrations: u64,
    /// Histogram over [`DomainLevel::ALL`] (SMT, cache, socket, NUMA,
    /// system) of the topological distance of each migration.
    pub migrations_by_tier: [u64; DomainLevel::ALL.len()],
    /// Histogram over [`MigrationReason::ALL_LABELS`].
    pub migrations_by_reason: [u64; MigrationReason::ALL_LABELS.len()],
    /// Per-thread and per-core speed samples.
    pub speed_samples: u64,
    /// Balancer decision points (all outcomes).
    pub balancer_activations: u64,
    /// Threads reaching a barrier.
    pub barrier_arrivals: u64,
    /// Barrier episodes released.
    pub barrier_releases: u64,
    /// Failed OS-facing operations of the native balancer (every attempt
    /// counts, including ones that were retried).
    pub proc_faults: u64,
    /// Histogram over [`ProcFaultKind::ALL_LABELS`].
    pub proc_faults_by_kind: [u64; ProcFaultKind::ALL_LABELS.len()],
    /// Faults that were followed by a bounded backoff retry.
    pub proc_retries: u64,
    /// Threads quarantined after repeated read failures.
    pub quarantines: u64,
    /// Open-loop server requests admitted to the shared queue.
    pub request_arrivals: u64,
    /// Server subtask dispatches (queue pulls by workers).
    pub request_dispatches: u64,
    /// Server requests completed (all subtasks done).
    pub request_completions: u64,
    /// Server requests dropped instead of served (all reasons).
    pub request_drops: u64,
    /// Histogram over [`RequestDropReason::ALL_LABELS`].
    pub request_drops_by_reason: [u64; RequestDropReason::ALL_LABELS.len()],
    /// Frequency-ratio switches (DVFS steps / thermal-throttle
    /// transitions) applied from pre-generated schedules.
    pub freq_steps: u64,
}

/// Cumulative time a task spent in each scheduler state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateTimes {
    /// Time on a CPU.
    pub running: SimDuration,
    /// Time waiting on a run queue.
    pub runnable: SimDuration,
    /// Time blocked on a condition or timed sleep.
    pub blocked: SimDuration,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LifeState {
    Running,
    Runnable,
    Blocked,
    Exited,
}

/// Streaming min/max/mean/variance (Welford) over a series of samples.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeriesStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl SeriesStats {
    /// Folds one sample into the running statistics.
    pub fn push(&mut self, x: f64) {
        if self.n == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest sample (0 if none).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (0 if none).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sample standard deviation (0 with fewer than two samples).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }
}

fn tier_index(level: DomainLevel) -> usize {
    DomainLevel::ALL
        .iter()
        .position(|l| *l == level)
        .expect("DomainLevel::ALL is exhaustive")
}

/// The event sink. Cheap to record into (one branch, one ring push, a few
/// counter bumps); everything analytical is derived at export time.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    cfg: TraceConfig,
    ring: VecDeque<TraceRecord>,
    dropped: u64,
    /// High-volume records withheld from the ring by `sample_rate`.
    sampled_out: u64,
    /// xorshift64 state behind the sampling decision stream.
    sample_state: u64,
    counters: TraceCounters,
    n_cores: usize,
    task_names: Vec<String>,
    /// Per-task (state, since) for time-in-state accounting.
    life: Vec<Option<(LifeState, SimTime)>>,
    time_in_state: Vec<StateTimes>,
    /// Core-level speed/utilization samples (`SpeedSample { task: None }`).
    core_speed: Vec<SeriesStats>,
    /// Task-level speed samples (`SpeedSample { task: Some(_) }`).
    task_speed: Vec<SeriesStats>,
    /// End-to-end request latencies in milliseconds (`RequestComplete`).
    request_latency: SeriesStats,
    /// Request queueing delays in milliseconds (`RequestDispatch`).
    request_wait: SeriesStats,
    first_time: Option<SimTime>,
    last_time: SimTime,
}

impl TraceBuffer {
    /// An empty buffer with the default configuration.
    pub fn new() -> TraceBuffer {
        Self::with_config(TraceConfig::default())
    }

    /// An empty buffer with explicit tunables.
    pub fn with_config(cfg: TraceConfig) -> TraceBuffer {
        // SplitMix64 scramble so nearby seeds give unrelated streams; the
        // state must be non-zero for xorshift.
        let mut z = cfg.sample_seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let sample_state = (z ^ (z >> 31)) | 1;
        TraceBuffer {
            cfg,
            sample_state,
            ..TraceBuffer::default()
        }
    }

    /// The sink's tunables.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Tells the sink how many cores the machine has (drives exporter
    /// track metadata).
    pub fn set_n_cores(&mut self, n: usize) {
        self.n_cores = self.n_cores.max(n);
        if self.core_speed.len() < n {
            self.core_speed.resize_with(n, SeriesStats::default);
        }
    }

    /// Highest core count this sink knows about.
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// Registers a task's name and starts its time-in-state clock (new
    /// tasks are runnable).
    pub fn task_spawned(&mut self, task: usize, name: &str, now: SimTime) {
        self.ensure_task(task);
        self.task_names[task] = name.to_string();
        self.life[task] = Some((LifeState::Runnable, now));
    }

    /// The registered name, or a synthetic `t<N>` fallback.
    pub fn task_name(&self, task: usize) -> String {
        match self.task_names.get(task) {
            Some(n) if !n.is_empty() => n.clone(),
            _ => format!("t{task}"),
        }
    }

    fn ensure_task(&mut self, task: usize) {
        if self.task_names.len() <= task {
            self.task_names.resize(task + 1, String::new());
            self.life.resize(task + 1, None);
            self.time_in_state
                .resize_with(task + 1, StateTimes::default);
            self.task_speed.resize_with(task + 1, SeriesStats::default);
        }
    }

    fn transition(&mut self, task: usize, to: LifeState, now: SimTime) {
        self.ensure_task(task);
        let prev = self.life[task];
        if let Some((state, since)) = prev {
            let spent = now.saturating_since(since);
            let bucket = &mut self.time_in_state[task];
            match state {
                LifeState::Running => bucket.running += spent,
                LifeState::Runnable => bucket.runnable += spent,
                LifeState::Blocked => bucket.blocked += spent,
                LifeState::Exited => {}
            }
        }
        self.life[task] = Some((to, now));
    }

    /// Records one event, updating aggregates and the ring.
    pub fn record(&mut self, time: SimTime, core: CoreId, event: TraceEvent) {
        self.first_time.get_or_insert(time);
        self.last_time = self.last_time.max(time);
        self.set_n_cores(core.0 + 1);
        match &event {
            TraceEvent::Dispatch { task } => {
                self.counters.dispatches += 1;
                self.transition(*task, LifeState::Running, time);
            }
            TraceEvent::Desched { task, .. } => {
                self.counters.descheds += 1;
                self.transition(*task, LifeState::Runnable, time);
            }
            TraceEvent::Preempt { .. } => self.counters.preemptions += 1,
            TraceEvent::Wake { task } => {
                self.counters.wakes += 1;
                self.transition(*task, LifeState::Runnable, time);
            }
            TraceEvent::Sleep { task } => {
                self.counters.sleeps += 1;
                self.transition(*task, LifeState::Blocked, time);
            }
            TraceEvent::Exit { task } => {
                self.counters.exits += 1;
                self.transition(*task, LifeState::Exited, time);
            }
            TraceEvent::Migrate { tier, reason, .. } => {
                self.counters.migrations += 1;
                self.counters.migrations_by_tier[tier_index(*tier)] += 1;
                self.counters.migrations_by_reason[reason.index()] += 1;
            }
            TraceEvent::SpeedSample { task, speed } => {
                self.counters.speed_samples += 1;
                match task {
                    Some(t) => {
                        self.ensure_task(*t);
                        self.task_speed[*t].push(*speed);
                    }
                    None => {
                        self.core_speed[core.0].push(*speed);
                    }
                }
            }
            TraceEvent::BalancerActivation { .. } => self.counters.balancer_activations += 1,
            TraceEvent::BarrierArrive { .. } => self.counters.barrier_arrivals += 1,
            TraceEvent::BarrierRelease { .. } => self.counters.barrier_releases += 1,
            TraceEvent::ProcFault { kind, retrying, .. } => {
                self.counters.proc_faults += 1;
                self.counters.proc_faults_by_kind[kind.index()] += 1;
                if *retrying {
                    self.counters.proc_retries += 1;
                }
            }
            TraceEvent::Quarantined { .. } => self.counters.quarantines += 1,
            TraceEvent::RequestArrival { .. } => self.counters.request_arrivals += 1,
            TraceEvent::RequestDispatch { wait, .. } => {
                self.counters.request_dispatches += 1;
                self.request_wait.push(wait.as_millis_f64());
            }
            TraceEvent::RequestComplete { latency, .. } => {
                self.counters.request_completions += 1;
                self.request_latency.push(latency.as_millis_f64());
            }
            TraceEvent::RequestDrop { reason, .. } => {
                self.counters.request_drops += 1;
                self.counters.request_drops_by_reason[reason.index()] += 1;
            }
            TraceEvent::FreqStep { .. } => self.counters.freq_steps += 1,
        }
        if self.cfg.sample_rate < 1.0
            && matches!(
                event,
                TraceEvent::Dispatch { .. }
                    | TraceEvent::Desched { .. }
                    | TraceEvent::SpeedSample { .. }
            )
            && !self.sample_keep()
        {
            self.sampled_out += 1;
            return;
        }
        if self.ring.len() >= self.cfg.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TraceRecord { time, core, event });
    }

    /// One draw of the deterministic sampling stream: keep with
    /// probability `sample_rate`.
    fn sample_keep(&mut self) -> bool {
        let mut x = self.sample_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.sample_state = x;
        // 53 uniform mantissa bits → [0, 1).
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        u < self.cfg.sample_rate
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.ring.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True iff no records are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Records evicted from the ring (aggregates still cover them).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// High-volume records withheld from the ring by
    /// [`TraceConfig::sample_rate`] (aggregates still cover them).
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out
    }

    /// Aggregate counters (cover dropped records too).
    pub fn counters(&self) -> &TraceCounters {
        &self.counters
    }

    /// Time-in-state aggregate for a task (zeroes if never seen).
    pub fn time_in_state(&self, task: usize) -> StateTimes {
        self.time_in_state.get(task).copied().unwrap_or_default()
    }

    /// Number of tasks ever seen by the sink.
    pub fn n_tasks(&self) -> usize {
        self.task_names.len()
    }

    /// Speed/utilization series statistics for a core.
    pub fn core_speed_stats(&self, core: CoreId) -> SeriesStats {
        self.core_speed.get(core.0).copied().unwrap_or_default()
    }

    /// Speed series statistics for a task.
    pub fn task_speed_stats(&self, task: usize) -> SeriesStats {
        self.task_speed.get(task).copied().unwrap_or_default()
    }

    /// End-to-end request latency statistics (milliseconds), covering
    /// every `RequestComplete` recorded, including dropped ring records.
    pub fn request_latency_stats(&self) -> SeriesStats {
        self.request_latency
    }

    /// Request queueing-delay statistics (milliseconds), one sample per
    /// subtask dispatch.
    pub fn request_wait_stats(&self) -> SeriesStats {
        self.request_wait
    }

    /// First recorded timestamp, if any event was recorded.
    pub fn start_time(&self) -> Option<SimTime> {
        self.first_time
    }

    /// Latest recorded timestamp.
    pub fn end_time(&self) -> SimTime {
        self.last_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn ring_caps_and_counts_drops() {
        let mut buf = TraceBuffer::with_config(TraceConfig {
            capacity: 4,
            ..TraceConfig::default()
        });
        for i in 0..10 {
            buf.record(t(i), CoreId(0), TraceEvent::Wake { task: 0 });
        }
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.dropped(), 6);
        assert_eq!(buf.counters().wakes, 10, "aggregates cover drops");
        let first_retained = buf.records().next().unwrap().time;
        assert_eq!(first_retained, t(6));
    }

    #[test]
    fn time_in_state_accumulates() {
        let mut buf = TraceBuffer::new();
        buf.task_spawned(0, "a", t(0));
        buf.record(t(2), CoreId(0), TraceEvent::Dispatch { task: 0 });
        buf.record(
            t(7),
            CoreId(0),
            TraceEvent::Desched {
                task: 0,
                ran: SimDuration::from_millis(5),
            },
        );
        buf.record(t(7), CoreId(0), TraceEvent::Sleep { task: 0 });
        buf.record(t(10), CoreId(0), TraceEvent::Wake { task: 0 });
        buf.record(t(10), CoreId(0), TraceEvent::Dispatch { task: 0 });
        buf.record(t(11), CoreId(0), TraceEvent::Exit { task: 0 });
        let s = buf.time_in_state(0);
        assert_eq!(s.running, SimDuration::from_millis(6));
        assert_eq!(s.runnable, SimDuration::from_millis(2));
        assert_eq!(s.blocked, SimDuration::from_millis(3));
    }

    #[test]
    fn histograms_fill() {
        let mut buf = TraceBuffer::new();
        buf.record(
            t(1),
            CoreId(1),
            TraceEvent::Migrate {
                task: 0,
                from: CoreId(0),
                to: CoreId(1),
                tier: DomainLevel::Cache,
                reason: MigrationReason::NewIdle,
            },
        );
        buf.record(
            t(2),
            CoreId(2),
            TraceEvent::Migrate {
                task: 1,
                from: CoreId(0),
                to: CoreId(2),
                tier: DomainLevel::Numa,
                reason: MigrationReason::SpeedPull {
                    local_speed: 1.0,
                    remote_speed: 0.5,
                    global_speed: 0.75,
                },
            },
        );
        let c = buf.counters();
        assert_eq!(c.migrations, 2);
        assert_eq!(c.migrations_by_tier[tier_index(DomainLevel::Cache)], 1);
        assert_eq!(c.migrations_by_tier[tier_index(DomainLevel::Numa)], 1);
        assert_eq!(c.migrations_by_reason[MigrationReason::NewIdle.index()], 1);
        assert_eq!(c.migrations_by_reason[0], 1, "speed-pull is index 0");
    }

    #[test]
    fn series_stats_are_sane() {
        let mut s = SeriesStats::default();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert!((s.stddev() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn fault_counters_accumulate() {
        use crate::event::{ProcFaultKind, ProcOp};
        let mut buf = TraceBuffer::new();
        buf.record(
            t(1),
            CoreId(0),
            TraceEvent::ProcFault {
                task: Some(42),
                op: ProcOp::ReadCpuTime,
                kind: ProcFaultKind::Malformed,
                attempt: 1,
                retrying: true,
            },
        );
        buf.record(
            t(2),
            CoreId(0),
            TraceEvent::ProcFault {
                task: Some(42),
                op: ProcOp::SetAffinity,
                kind: ProcFaultKind::PermissionDenied,
                attempt: 1,
                retrying: false,
            },
        );
        buf.record(
            t(3),
            CoreId(0),
            TraceEvent::Quarantined {
                task: 42,
                failures: 3,
            },
        );
        let c = buf.counters();
        assert_eq!(c.proc_faults, 2);
        assert_eq!(c.proc_retries, 1);
        assert_eq!(c.quarantines, 1);
        assert_eq!(c.proc_faults_by_kind[ProcFaultKind::Malformed.index()], 1);
        assert_eq!(
            c.proc_faults_by_kind[ProcFaultKind::PermissionDenied.index()],
            1
        );
    }

    fn sampled_buffer(rate: f64, seed: u64) -> TraceBuffer {
        let mut buf = TraceBuffer::with_config(TraceConfig {
            sample_rate: rate,
            sample_seed: seed,
            ..TraceConfig::default()
        });
        for i in 0..200 {
            buf.record(t(i), CoreId(0), TraceEvent::Dispatch { task: 0 });
            buf.record(
                t(i),
                CoreId(0),
                TraceEvent::SpeedSample {
                    task: None,
                    speed: 0.5,
                },
            );
            // Never sampled: migrations and the like are always retained.
            buf.record(
                t(i),
                CoreId(0),
                TraceEvent::Migrate {
                    task: 0,
                    from: CoreId(0),
                    to: CoreId(1),
                    tier: DomainLevel::Cache,
                    reason: MigrationReason::NewIdle,
                },
            );
        }
        buf
    }

    #[test]
    fn sampling_drops_only_high_volume_records_and_keeps_aggregates() {
        let full = sampled_buffer(1.0, 7);
        let half = sampled_buffer(0.5, 7);
        assert_eq!(full.sampled_out(), 0);
        assert!(half.sampled_out() > 50, "~200 of 400 eligible should drop");
        assert!(half.len() < full.len());
        // Aggregates are exact either way.
        assert_eq!(full.counters(), half.counters());
        assert_eq!(half.counters().dispatches, 200);
        assert_eq!(half.counters().speed_samples, 200);
        // Low-volume records are all retained.
        let migrates = half
            .records()
            .filter(|r| matches!(r.event, TraceEvent::Migrate { .. }))
            .count();
        assert_eq!(migrates, 200);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = sampled_buffer(0.3, 42);
        let b = sampled_buffer(0.3, 42);
        let times = |buf: &TraceBuffer| -> Vec<(SimTime, bool)> {
            buf.records()
                .map(|r| (r.time, matches!(r.event, TraceEvent::Dispatch { .. })))
                .collect()
        };
        assert_eq!(times(&a), times(&b));
        let c = sampled_buffer(0.3, 43);
        assert_ne!(times(&a), times(&c), "different seed, different sample");
    }

    #[test]
    fn sampling_rate_zero_keeps_no_eligible_records() {
        let buf = sampled_buffer(0.0, 1);
        assert_eq!(buf.sampled_out(), 400);
        assert!(buf
            .records()
            .all(|r| matches!(r.event, TraceEvent::Migrate { .. })));
    }

    #[test]
    fn request_counters_and_series_accumulate() {
        use crate::event::RequestDropReason;
        let mut buf = TraceBuffer::new();
        buf.record(
            t(1),
            CoreId(0),
            TraceEvent::RequestArrival {
                request: 0,
                arrival: t(1),
                queued: 1,
            },
        );
        buf.record(
            t(2),
            CoreId(0),
            TraceEvent::RequestDispatch {
                request: 0,
                subtask: 0,
                wait: SimDuration::from_millis(1),
            },
        );
        buf.record(
            t(5),
            CoreId(0),
            TraceEvent::RequestComplete {
                request: 0,
                latency: SimDuration::from_millis(4),
            },
        );
        buf.record(
            t(6),
            CoreId(1),
            TraceEvent::RequestDrop {
                request: 1,
                reason: RequestDropReason::QueueFull,
            },
        );
        let c = buf.counters();
        assert_eq!(c.request_arrivals, 1);
        assert_eq!(c.request_dispatches, 1);
        assert_eq!(c.request_completions, 1);
        assert_eq!(c.request_drops, 1);
        assert_eq!(
            c.request_drops_by_reason[RequestDropReason::QueueFull.index()],
            1
        );
        assert_eq!(buf.request_latency_stats().count(), 1);
        assert!((buf.request_latency_stats().mean() - 4.0).abs() < 1e-12);
        assert!((buf.request_wait_stats().mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn task_names_fall_back() {
        let mut buf = TraceBuffer::new();
        buf.task_spawned(1, "worker", t(0));
        assert_eq!(buf.task_name(1), "worker");
        assert_eq!(buf.task_name(7), "t7");
    }
}
