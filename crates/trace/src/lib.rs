//! # speedbal-trace
//!
//! Structured event tracing for the speedbal simulator and the native
//! balancer. The design goal is *zero cost when disabled*: the scheduler
//! holds an `Option<Box<TraceBuffer>>` and every instrumentation site is a
//! single `if let Some(..)` on it; recording never feeds back into
//! scheduling decisions, so a traced run is bit-identical to an untraced
//! one (enforced by a property test in the workspace root).
//!
//! Three layers:
//!
//! 1. [`TraceEvent`]/[`TraceRecord`] ([`event`]) — the typed schema:
//!    context switches, preemptions, wakes/sleeps, migrations (with the
//!    *reason* for the pull: speed deltas, blocked intervals, kernel
//!    balancing tier), per-interval speed samples, balancer activations
//!    (with jitter draws), and barrier arrive/release episodes.
//! 2. [`TraceBuffer`] ([`sink`]) — a bounded ring of records plus
//!    aggregates maintained at record time (counters, migration
//!    histograms by cache/NUMA tier and by reason, per-task
//!    time-in-state, per-core/per-task speed series statistics), so the
//!    summary survives ring wraparound.
//! 3. Exporters — [`export_chrome_to`] streams Chrome trace-event JSON
//!    loadable in Perfetto/`chrome://tracing` (one track per core, async
//!    spans for barrier epochs, counter tracks for speeds) through a
//!    buffered writer, so multi-gigabyte server traces export without
//!    materializing the document; [`export_chrome`] collects the same
//!    bytes into a `String`; [`render_summary`] renders a plain-text
//!    report.

#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod sink;
pub mod summary;

pub use chrome::{export_chrome, export_chrome_to};
pub use event::{
    ActivationOutcome, MigrationReason, ProcFaultKind, ProcOp, RequestDropReason, TraceEvent,
    TraceRecord,
};
pub use sink::{SeriesStats, StateTimes, TraceBuffer, TraceConfig, TraceCounters};
pub use summary::render_summary;
