//! Typed trace events.
//!
//! Every record carries a [`SimTime`] stamp and the [`CoreId`] it happened
//! on; the task is a raw `usize` index (this crate sits below the scheduler
//! in the dependency graph, so it cannot name `TaskId`). Events cover the
//! whole scheduling life cycle — dispatches, deschedules, preemptions,
//! sleeps/wakes, migrations, balancer decisions, speed samples and barrier
//! episodes — so one trace answers both "what did the schedule look like"
//! and "why did the balancer do that".

use speedbal_machine::{CoreId, DomainLevel};
use speedbal_sim::{SimDuration, SimTime};

/// Why a task moved between cores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MigrationReason {
    /// The speed balancer pulled it: the local core was faster than the
    /// global average and the remote core below threshold (paper §5.1).
    SpeedPull {
        /// Measured speed of the pulling core.
        local_speed: f64,
        /// Published speed of the core the task was pulled from.
        remote_speed: f64,
        /// Global (all-core average) speed at decision time.
        global_speed: f64,
    },
    /// Linux queue-length balancing at the given domain level.
    LoadBalance {
        /// Scheduling-domain level the balancing pass ran at.
        level: DomainLevel,
    },
    /// Linux newidle pull into a core that just ran dry.
    NewIdle,
    /// DWRR round balancing (stealing round-eligible threads).
    DwrrRound {
        /// The DWRR round number during which the steal happened.
        round: u64,
    },
    /// ULE's twice-a-second push sweep.
    UlePush,
    /// ULE idle stealing.
    UleSteal,
    /// A wakeup landed the task on a different core than it slept on
    /// (`select_idle_sibling`-style placement). Does not count against
    /// `System::total_migrations`, mirroring how the affinity mask is not
    /// involved — but it is a real cross-core move.
    WakePlacement,
    /// Explicit affinity change (`pin_task`/`migrate_task` without an
    /// attributed policy decision).
    Unspecified,
}

impl MigrationReason {
    /// Short stable label (used by exporters and counters).
    pub fn label(&self) -> &'static str {
        match self {
            MigrationReason::SpeedPull { .. } => "speed-pull",
            MigrationReason::LoadBalance { .. } => "load-balance",
            MigrationReason::NewIdle => "newidle",
            MigrationReason::DwrrRound { .. } => "dwrr-round",
            MigrationReason::UlePush => "ule-push",
            MigrationReason::UleSteal => "ule-steal",
            MigrationReason::WakePlacement => "wake-placement",
            MigrationReason::Unspecified => "unspecified",
        }
    }

    /// Index into per-reason counter arrays; keep in sync with
    /// [`MigrationReason::ALL_LABELS`].
    pub fn index(&self) -> usize {
        match self {
            MigrationReason::SpeedPull { .. } => 0,
            MigrationReason::LoadBalance { .. } => 1,
            MigrationReason::NewIdle => 2,
            MigrationReason::DwrrRound { .. } => 3,
            MigrationReason::UlePush => 4,
            MigrationReason::UleSteal => 5,
            MigrationReason::WakePlacement => 6,
            MigrationReason::Unspecified => 7,
        }
    }

    /// Labels in [`MigrationReason::index`] order.
    pub const ALL_LABELS: [&'static str; 8] = [
        "speed-pull",
        "load-balance",
        "newidle",
        "dwrr-round",
        "ule-push",
        "ule-steal",
        "wake-placement",
        "unspecified",
    ];
}

/// Which OS-facing operation a [`TraceEvent::ProcFault`] failed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcOp {
    /// Thread discovery (`/proc/<pid>/task` readdir).
    ListThreads,
    /// Per-thread CPU-time read (`/proc/.../stat`).
    ReadCpuTime,
    /// `sched_setaffinity` placement or migration.
    SetAffinity,
}

impl ProcOp {
    /// Short stable label (used by exporters).
    pub fn label(&self) -> &'static str {
        match self {
            ProcOp::ListThreads => "list-threads",
            ProcOp::ReadCpuTime => "read-cputime",
            ProcOp::SetAffinity => "set-affinity",
        }
    }
}

/// Why an OS-facing operation failed (the native balancer's typed error
/// classes, mirrored here so traces can histogram them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcFaultKind {
    /// Thread/process gone (`ENOENT`/`ESRCH`) — churn, not an error.
    Vanished,
    /// `EPERM`/`EACCES` — the kernel refused the call.
    PermissionDenied,
    /// Torn or truncated procfs content that did not parse.
    Malformed,
    /// Any other (transient) I/O failure.
    Io,
}

impl ProcFaultKind {
    /// Short stable label (used by exporters and counters).
    pub fn label(&self) -> &'static str {
        match self {
            ProcFaultKind::Vanished => "vanished",
            ProcFaultKind::PermissionDenied => "eperm",
            ProcFaultKind::Malformed => "malformed",
            ProcFaultKind::Io => "io",
        }
    }

    /// Index into per-kind counter arrays; keep in sync with
    /// [`ProcFaultKind::ALL_LABELS`].
    pub fn index(&self) -> usize {
        match self {
            ProcFaultKind::Vanished => 0,
            ProcFaultKind::PermissionDenied => 1,
            ProcFaultKind::Malformed => 2,
            ProcFaultKind::Io => 3,
        }
    }

    /// Labels in [`ProcFaultKind::index`] order.
    pub const ALL_LABELS: [&'static str; 4] = ["vanished", "eperm", "malformed", "io"];
}

/// Why a server request was dropped instead of served (the typed
/// overload outcomes of the open-loop server workload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestDropReason {
    /// The bounded request queue was full at admission time.
    QueueFull,
    /// Load shedding: the request waited longer than the configured
    /// shed threshold before any worker picked it up.
    ShedTimeout,
}

impl RequestDropReason {
    /// Short stable label (used by exporters and counters).
    pub fn label(&self) -> &'static str {
        match self {
            RequestDropReason::QueueFull => "queue-full",
            RequestDropReason::ShedTimeout => "shed-timeout",
        }
    }

    /// Index into per-reason counter arrays; keep in sync with
    /// [`RequestDropReason::ALL_LABELS`].
    pub fn index(&self) -> usize {
        match self {
            RequestDropReason::QueueFull => 0,
            RequestDropReason::ShedTimeout => 1,
        }
    }

    /// Labels in [`RequestDropReason::index`] order.
    pub const ALL_LABELS: [&'static str; 2] = ["queue-full", "shed-timeout"];
}

/// What one balancer activation decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivationOutcome {
    /// Local metric not above the global one: no pull attempted.
    BelowAverage,
    /// A post-migration block interval suppressed the pull.
    Blocked,
    /// Wanted to pull but found no eligible victim.
    NoCandidate,
    /// Pulled (or pushed) at least one task.
    Pulled,
    /// Kernel balancer: examined the domain and found it balanced.
    Balanced,
}

impl ActivationOutcome {
    /// Short stable label (used by exporters and counters).
    pub fn label(&self) -> &'static str {
        match self {
            ActivationOutcome::BelowAverage => "below-average",
            ActivationOutcome::Blocked => "blocked",
            ActivationOutcome::NoCandidate => "no-candidate",
            ActivationOutcome::Pulled => "pulled",
            ActivationOutcome::Balanced => "balanced",
        }
    }
}

/// One structured trace event. See [`crate::TraceBuffer::record`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A task was put on the CPU (context switch in).
    Dispatch {
        /// The dispatched task.
        task: usize,
    },
    /// The running task came off the CPU after occupying it for `ran`.
    Desched {
        /// The descheduled task.
        task: usize,
        /// How long it occupied the CPU.
        ran: SimDuration,
    },
    /// A wakeup's vruntime beat the running task: forced reschedule.
    Preempt {
        /// The preempted (running) task.
        task: usize,
        /// The waking task that forced it off.
        by: usize,
    },
    /// A blocked task became runnable.
    Wake {
        /// The newly runnable task.
        task: usize,
    },
    /// A task left the runnable set (blocked on a condition or timed sleep).
    Sleep {
        /// The task leaving the runnable set.
        task: usize,
    },
    /// A task exited.
    Exit {
        /// The exiting task.
        task: usize,
    },
    /// A task moved between run queues.
    Migrate {
        /// The migrated task.
        task: usize,
        /// Core it left.
        from: CoreId,
        /// Core it arrived on.
        to: CoreId,
        /// Topological distance of the move (cache/NUMA tier histogramming).
        tier: DomainLevel,
        /// Which policy decision moved it, with its inputs.
        reason: MigrationReason,
    },
    /// A per-interval speed sample: `task = Some(t)` is one thread's
    /// measured speed (CPU-time share), `task = None` is the core-level
    /// utilization over the sampling window.
    SpeedSample {
        /// `Some(tid)` for a thread sample, `None` for the core level.
        task: Option<usize>,
        /// The measured speed (`t_exec / t_real` over the window).
        speed: f64,
    },
    /// One balancer-thread activation and its decision. `local`/`global`
    /// are the policy's metric (core speeds for SPEED, queue lengths for
    /// the kernel balancers); `jitter` is the randomized part of the delay
    /// to the next activation (zero when the policy does not jitter).
    BalancerActivation {
        /// Policy label ("SPEED", "LOAD", ...).
        policy: &'static str,
        /// The local core's metric at decision time.
        local: f64,
        /// The global (average) metric at decision time.
        global: f64,
        /// What the activation decided.
        outcome: ActivationOutcome,
        /// Randomized part of the delay to the next activation.
        jitter: SimDuration,
    },
    /// A thread arrived at a barrier. `cond` identifies the episode (each
    /// barrier episode allocates a fresh condition), so it doubles as the
    /// async-span id in the Chrome exporter.
    BarrierArrive {
        /// The arriving task.
        task: usize,
        /// Condition id of the episode (doubles as the async-span id).
        cond: usize,
        /// Episode number of the barrier.
        episode: u64,
        /// Arrival rank within the episode (1-based).
        arrived: usize,
        /// Total threads the barrier waits for.
        parties: usize,
    },
    /// The last arriver released a barrier episode.
    BarrierRelease {
        /// The releasing (last-arriving) task.
        task: usize,
        /// Condition id of the episode (matches the arrive events).
        cond: usize,
        /// Episode number of the barrier.
        episode: u64,
    },
    /// An OS-facing operation of the native balancer failed. `task` is the
    /// tid involved (`None` for process-wide operations like thread
    /// discovery), `attempt` counts from 1 within one logical operation,
    /// and `retrying` says whether a bounded backoff retry follows (so
    /// `retrying: false` records where the balancer gave up or moved on).
    ProcFault {
        /// The tid involved, if the operation targeted one thread.
        task: Option<usize>,
        /// Which OS-facing operation failed.
        op: ProcOp,
        /// The typed failure class.
        kind: ProcFaultKind,
        /// Attempt number within one logical operation (from 1).
        attempt: u32,
        /// Whether a bounded backoff retry follows.
        retrying: bool,
    },
    /// An open-loop server request entered the shared queue. Recorded at
    /// admission (the moment a worker first observes the arrival clock
    /// passing it); `arrival` is the request's nominal open-loop arrival
    /// time, which is also the zero point of its latency measurement.
    RequestArrival {
        /// The admitted request's id (dense, from 0, per scenario).
        request: usize,
        /// Nominal open-loop arrival time of the request.
        arrival: SimTime,
        /// Subtasks waiting in the shared queue just after admission.
        queued: usize,
    },
    /// A worker pulled one subtask of a request off the shared queue and
    /// started computing it.
    RequestDispatch {
        /// The request being served.
        request: usize,
        /// Subtask index within the request (0 for non-fan-out requests).
        subtask: usize,
        /// Queueing delay: time between the request's nominal arrival
        /// and this dispatch.
        wait: SimDuration,
    },
    /// The last subtask of a request finished: the request is complete.
    RequestComplete {
        /// The completed request.
        request: usize,
        /// End-to-end latency (completion minus nominal arrival).
        latency: SimDuration,
    },
    /// A request was dropped instead of served.
    RequestDrop {
        /// The dropped request.
        request: usize,
        /// The typed overload outcome.
        reason: RequestDropReason,
    },
    /// The native balancer quarantined a thread after `failures`
    /// consecutive failed reads: the tid is dropped from speed accounting
    /// and re-adopted only after a cooldown (or never, if it stays sick).
    Quarantined {
        /// The quarantined tid.
        task: usize,
        /// Length of the failure streak that triggered it.
        failures: u32,
    },
    /// The core's pre-generated frequency schedule switched it to a new
    /// clock ratio (DVFS step or thermal-throttle transition). The core's
    /// effective capacity from this instant is its static topology speed
    /// times `ratio`.
    FreqStep {
        /// The new frequency ratio (multiplies the core's static speed).
        ratio: f64,
    },
}

/// A stamped event: when, where, what.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// When it happened.
    pub time: SimTime,
    /// The core it happened on.
    pub core: CoreId,
    /// What happened.
    pub event: TraceEvent,
}
