//! Typed trace events.
//!
//! Every record carries a [`SimTime`] stamp and the [`CoreId`] it happened
//! on; the task is a raw `usize` index (this crate sits below the scheduler
//! in the dependency graph, so it cannot name `TaskId`). Events cover the
//! whole scheduling life cycle — dispatches, deschedules, preemptions,
//! sleeps/wakes, migrations, balancer decisions, speed samples and barrier
//! episodes — so one trace answers both "what did the schedule look like"
//! and "why did the balancer do that".

use speedbal_machine::{CoreId, DomainLevel};
use speedbal_sim::{SimDuration, SimTime};

/// Why a task moved between cores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MigrationReason {
    /// The speed balancer pulled it: the local core was faster than the
    /// global average and the remote core below threshold (paper §5.1).
    SpeedPull {
        /// Measured speed of the pulling core.
        local_speed: f64,
        /// Published speed of the core the task was pulled from.
        remote_speed: f64,
        /// Global (all-core average) speed at decision time.
        global_speed: f64,
    },
    /// Linux queue-length balancing at the given domain level.
    LoadBalance { level: DomainLevel },
    /// Linux newidle pull into a core that just ran dry.
    NewIdle,
    /// DWRR round balancing (stealing round-eligible threads).
    DwrrRound { round: u64 },
    /// ULE's twice-a-second push sweep.
    UlePush,
    /// ULE idle stealing.
    UleSteal,
    /// A wakeup landed the task on a different core than it slept on
    /// (`select_idle_sibling`-style placement). Does not count against
    /// `System::total_migrations`, mirroring how the affinity mask is not
    /// involved — but it is a real cross-core move.
    WakePlacement,
    /// Explicit affinity change (`pin_task`/`migrate_task` without an
    /// attributed policy decision).
    Unspecified,
}

impl MigrationReason {
    /// Short stable label (used by exporters and counters).
    pub fn label(&self) -> &'static str {
        match self {
            MigrationReason::SpeedPull { .. } => "speed-pull",
            MigrationReason::LoadBalance { .. } => "load-balance",
            MigrationReason::NewIdle => "newidle",
            MigrationReason::DwrrRound { .. } => "dwrr-round",
            MigrationReason::UlePush => "ule-push",
            MigrationReason::UleSteal => "ule-steal",
            MigrationReason::WakePlacement => "wake-placement",
            MigrationReason::Unspecified => "unspecified",
        }
    }

    /// Index into per-reason counter arrays; keep in sync with
    /// [`MigrationReason::ALL_LABELS`].
    pub fn index(&self) -> usize {
        match self {
            MigrationReason::SpeedPull { .. } => 0,
            MigrationReason::LoadBalance { .. } => 1,
            MigrationReason::NewIdle => 2,
            MigrationReason::DwrrRound { .. } => 3,
            MigrationReason::UlePush => 4,
            MigrationReason::UleSteal => 5,
            MigrationReason::WakePlacement => 6,
            MigrationReason::Unspecified => 7,
        }
    }

    /// Labels in [`MigrationReason::index`] order.
    pub const ALL_LABELS: [&'static str; 8] = [
        "speed-pull",
        "load-balance",
        "newidle",
        "dwrr-round",
        "ule-push",
        "ule-steal",
        "wake-placement",
        "unspecified",
    ];
}

/// What one balancer activation decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivationOutcome {
    /// Local metric not above the global one: no pull attempted.
    BelowAverage,
    /// A post-migration block interval suppressed the pull.
    Blocked,
    /// Wanted to pull but found no eligible victim.
    NoCandidate,
    /// Pulled (or pushed) at least one task.
    Pulled,
    /// Kernel balancer: examined the domain and found it balanced.
    Balanced,
}

impl ActivationOutcome {
    pub fn label(&self) -> &'static str {
        match self {
            ActivationOutcome::BelowAverage => "below-average",
            ActivationOutcome::Blocked => "blocked",
            ActivationOutcome::NoCandidate => "no-candidate",
            ActivationOutcome::Pulled => "pulled",
            ActivationOutcome::Balanced => "balanced",
        }
    }
}

/// One structured trace event. See [`crate::TraceBuffer::record`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A task was put on the CPU (context switch in).
    Dispatch { task: usize },
    /// The running task came off the CPU after occupying it for `ran`.
    Desched { task: usize, ran: SimDuration },
    /// A wakeup's vruntime beat the running task: forced reschedule.
    Preempt { task: usize, by: usize },
    /// A blocked task became runnable.
    Wake { task: usize },
    /// A task left the runnable set (blocked on a condition or timed sleep).
    Sleep { task: usize },
    /// A task exited.
    Exit { task: usize },
    /// A task moved between run queues.
    Migrate {
        task: usize,
        from: CoreId,
        to: CoreId,
        /// Topological distance of the move (cache/NUMA tier histogramming).
        tier: DomainLevel,
        reason: MigrationReason,
    },
    /// A per-interval speed sample: `task = Some(t)` is one thread's
    /// measured speed (CPU-time share), `task = None` is the core-level
    /// utilization over the sampling window.
    SpeedSample { task: Option<usize>, speed: f64 },
    /// One balancer-thread activation and its decision. `local`/`global`
    /// are the policy's metric (core speeds for SPEED, queue lengths for
    /// the kernel balancers); `jitter` is the randomized part of the delay
    /// to the next activation (zero when the policy does not jitter).
    BalancerActivation {
        policy: &'static str,
        local: f64,
        global: f64,
        outcome: ActivationOutcome,
        jitter: SimDuration,
    },
    /// A thread arrived at a barrier. `cond` identifies the episode (each
    /// barrier episode allocates a fresh condition), so it doubles as the
    /// async-span id in the Chrome exporter.
    BarrierArrive {
        task: usize,
        cond: usize,
        episode: u64,
        /// Arrival rank within the episode (1-based).
        arrived: usize,
        parties: usize,
    },
    /// The last arriver released a barrier episode.
    BarrierRelease {
        task: usize,
        cond: usize,
        episode: u64,
    },
}

/// A stamped event: when, where, what.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    pub time: SimTime,
    pub core: CoreId,
    pub event: TraceEvent,
}
