//! Analytic model of speed balancing (paper Section 4).
//!
//! With `N` threads of an SPMD application on `M` homogeneous cores
//! (`N > M`), let `T = ⌊N/M⌋`. Then `SQ = N mod M` cores are *slow* (they
//! run `T+1` threads) and `FQ = M − SQ` cores are *fast* (`T` threads).
//! Because the application synchronizes at barriers, its progress is the
//! progress of its **slowest** thread:
//!
//! * under queue-length balancing, which never fixes a one-task imbalance,
//!   per-thread speed is `1/(T+1)`;
//! * under ideal speed balancing every thread spends an equal share of time
//!   on fast and slow cores: asymptotic speed `½(1/T + 1/(T+1))`, a
//!   `(2T+1)/(2T)` speedup;
//! * **Lemma 1**: at most `2·⌈SQ/FQ⌉` balancing steps are needed for every
//!   thread to have run on a fast core at least once, so speed balancing is
//!   profitable when the program runs longer than that many balance
//!   intervals: `(T+1)·S > 2·⌈SQ/FQ⌉·B` with `S` the inter-barrier compute
//!   time and `B` the balance interval.
//!
//! These closed forms are used as oracles for the simulator tests and to
//! regenerate Figure 1.
//!
//! The [`weighted`] module generalizes the split and Lemma 1 to
//! heterogeneous machines (per-core effective capacities); the uniform
//! model above is the equal-speeds special case.

#![warn(missing_docs)]

pub mod lemma;
pub mod speeds;
pub mod weighted;

pub use lemma::{balancing_steps, is_profitable, min_profitable_granularity, ThreadSplit};
pub use speeds::{ideal_speed, queue_length_speed, repeated_migration_speed, speedup_bound};
pub use weighted::{capacity_share, weighted_balancing_steps, WeightedSplit};

/// One cell of Figure 1: the minimum inter-barrier computation time `S`
/// (in units of the balance interval `B`) above which speed balancing beats
/// queue-length balancing, for `n` threads on `m` cores.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig1Cell {
    /// Thread count `N`.
    pub threads: u32,
    /// Core count `M`.
    pub cores: u32,
    /// Minimum profitable `S` in units of `B` (0 when already balanced).
    pub min_granularity: f64,
}

/// Regenerates the data behind Figure 1: for every core count in
/// `cores` and every thread count `N` with `M < N ≤ threads_per_core_max·M`,
/// the minimum profitable `S` at `B = 1`.
///
/// The paper reports the data range [0.015, 147] for this sweep, with the
/// worst cases on the diagonals (two threads per core, `M−1` or `M−2` slow
/// cores).
pub fn figure1(cores: impl IntoIterator<Item = u32>, threads_per_core_max: u32) -> Vec<Fig1Cell> {
    let mut out = Vec::new();
    for m in cores {
        for n in (m + 1)..=(m * threads_per_core_max) {
            out.push(Fig1Cell {
                threads: n,
                cores: m,
                min_granularity: min_profitable_granularity(n, m, 1.0),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_covers_paper_range() {
        // The paper reports a data range of [0.015, 147] for its (unstated)
        // sweep grid; with cores 2..=100 and up to 350 threads our grid
        // reaches the same order at both ends: the fine-grained extreme
        // 2/(T+1) ≈ 0.015 at 267 threads on 2 cores, and the coarse
        // extreme ≈ 99 at 199 threads on 100 cores.
        let cells: Vec<Fig1Cell> = (2u32..=100)
            .flat_map(|m| {
                ((m + 1)..=350.min(m * 140)).map(move |n| Fig1Cell {
                    threads: n,
                    cores: m,
                    min_granularity: min_profitable_granularity(n, m, 1.0),
                })
            })
            .collect();
        assert!(!cells.is_empty());
        let min = cells
            .iter()
            .map(|c| c.min_granularity)
            .filter(|g| *g > 0.0)
            .fold(f64::INFINITY, f64::min);
        let max = cells.iter().map(|c| c.min_granularity).fold(0.0, f64::max);
        assert!(min < 0.02, "min {min} should reach ~0.015");
        assert!(max > 90.0, "max {max} should reach ~10^2");
    }

    #[test]
    fn figure1_worst_cases_on_diagonal() {
        // Few threads per core and many slow cores is the worst case.
        let bad = min_profitable_granularity(2 * 100 - 1, 100, 1.0);
        let good = min_profitable_granularity(4 * 100, 100, 1.0);
        assert!(bad > 10.0 * good.max(1e-9), "bad={bad} good={good}");
    }

    #[test]
    fn figure1_majority_fine_grained() {
        // "In the majority of cases S <= 1."
        let cells = figure1(10..=100, 4);
        let fine = cells.iter().filter(|c| c.min_granularity <= 1.0).count();
        assert!(
            fine * 2 > cells.len(),
            "only {fine}/{} cells were <= 1",
            cells.len()
        );
    }
}
