//! Weighted-core generalization of the Section 4 model (heterogeneous
//! machines).
//!
//! With per-core *effective capacities* `s_1 … s_M` (static speed × current
//! frequency ratio) the balanced assignment of `N` threads is no longer
//! `⌊N/M⌋` everywhere: core `j`'s fair share is its **quota**
//! `q_j = N·s_j / Σs`. Integer thread counts come from largest-remainder
//! apportionment: every core gets `⌊q_j⌋` threads and the `N − Σ⌊q_j⌋`
//! leftovers go to the largest fractional remainders (ties to the lower
//! core index). Cores rounded *up* are the **slow** queues `SQ_w` (their
//! per-thread speed dips below the fair share), cores at or under quota
//! are the **fast** queues `FQ_w`, and Lemma 1 carries over verbatim with
//! the weighted counts:
//!
//! > at most `2·⌈SQ_w/FQ_w⌉` balancing steps are needed for every thread
//! > to have run on an at-or-under-quota core at least once.
//!
//! On equal speeds every quota is `N/M`, so `SQ_w = N mod M`,
//! `FQ_w = M − SQ_w` and everything reduces exactly to
//! [`ThreadSplit`](crate::lemma::ThreadSplit) — property-tested below.
//!
//! The per-thread speed target also changes: with all cores busy, rotation
//! can give each of `N` always-runnable threads at most the egalitarian
//! **capacity share** `Σs / N` on time average (the uniform-machine
//! `M/N`). The simulator's weighted conformance cells check both the
//! apportioned counts and this time-averaged speed.

use serde::{Deserialize, Serialize};

/// The weighted fast/slow queue decomposition of `n` threads over cores
/// with effective capacities `speeds`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedSplit {
    /// Apportioned thread count per core (largest-remainder method).
    pub counts: Vec<u32>,
    /// Fractional fair share `n·s_j/Σs` per core.
    pub quotas: Vec<f64>,
    /// Cores rounded above their quota (the weighted `SQ`).
    pub slow_cores: u32,
    /// Cores at or below their quota (the weighted `FQ`).
    pub fast_cores: u32,
}

/// Tolerance for "rounded above quota": absorbs the float error of a quota
/// that is mathematically integral (e.g. equal speeds with `M | N`).
const QUOTA_EPS: f64 = 1e-9;

impl WeightedSplit {
    /// Apportions `n` threads over `speeds.len()` cores by capacity.
    ///
    /// Requires `n ≥ speeds.len() ≥ 1` (at least one thread per core on
    /// average, mirroring [`ThreadSplit::new`](crate::lemma::ThreadSplit::new))
    /// and every capacity finite and positive. Note a sufficiently slow
    /// core can still be apportioned zero threads.
    pub fn new(n: u32, speeds: &[f64]) -> WeightedSplit {
        let m = speeds.len();
        assert!(m >= 1, "need at least one core");
        assert!(
            n as usize >= m,
            "analysis assumes at least one thread per core"
        );
        for (i, s) in speeds.iter().enumerate() {
            assert!(
                s.is_finite() && *s > 0.0,
                "core {i} capacity must be finite and positive, got {s}"
            );
        }
        let total: f64 = speeds.iter().sum();
        let quotas: Vec<f64> = speeds.iter().map(|s| n as f64 * s / total).collect();
        let mut counts: Vec<u32> = quotas.iter().map(|q| q.floor() as u32).collect();
        let assigned: u32 = counts.iter().sum();
        // Hand the leftovers to the largest remainders, ties to the lower
        // index (sort is stable, so equal remainders keep index order).
        let leftover = n - assigned.min(n);
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&a, &b| {
            let ra = quotas[a] - quotas[a].floor();
            let rb = quotas[b] - quotas[b].floor();
            rb.total_cmp(&ra)
        });
        for &j in order.iter().take(leftover as usize) {
            counts[j] += 1;
        }
        let slow_cores = counts
            .iter()
            .zip(quotas.iter())
            .filter(|(c, q)| **c as f64 > **q + QUOTA_EPS)
            .count() as u32;
        WeightedSplit {
            slow_cores,
            fast_cores: m as u32 - slow_cores,
            counts,
            quotas,
        }
    }

    /// True iff the apportionment matches every quota exactly (no core is
    /// oversubscribed relative to its capacity).
    pub fn balanced(&self) -> bool {
        self.slow_cores == 0
    }

    /// Application speed of the *static* weighted split: the slowest
    /// per-thread rate `min_j s_j / counts_j` over occupied cores — the
    /// weighted analogue of `1/(T+1)`.
    pub fn application_speed(&self, speeds: &[f64]) -> f64 {
        assert_eq!(speeds.len(), self.counts.len());
        self.counts
            .iter()
            .zip(speeds.iter())
            .filter(|(c, _)| **c > 0)
            .map(|(c, s)| s / *c as f64)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Weighted **Lemma 1** bound: balancing steps needed so that every thread
/// has run on an at-or-under-quota core at least once is `2·⌈SQ_w/FQ_w⌉`
/// (zero when the apportionment is exact). Reduces to
/// [`balancing_steps`](crate::lemma::balancing_steps) on equal speeds.
pub fn weighted_balancing_steps(n: u32, speeds: &[f64]) -> u32 {
    let s = WeightedSplit::new(n, speeds);
    if s.balanced() {
        return 0;
    }
    // `fast_cores ≥ 1` always: each fractional remainder is < 1, so fewer
    // than M cores get rounded up.
    2 * s.slow_cores.div_ceil(s.fast_cores)
}

/// The egalitarian capacity share `Σs / n`: the time-averaged per-thread
/// speed a rotation policy can sustain for `n` always-runnable threads on
/// cores of total capacity `Σs`. The uniform-machine `M/N`.
pub fn capacity_share(n: u32, speeds: &[f64]) -> f64 {
    assert!(n >= 1, "need at least one thread");
    let total: f64 = speeds.iter().sum();
    assert!(total.is_finite() && total > 0.0);
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lemma::{balancing_steps, ThreadSplit};
    use proptest::prelude::*;

    #[test]
    fn paper_example_weighted() {
        // Speeds [2, 1], 4 threads: quotas [8/3, 4/3] → counts [3, 1],
        // core 0 rounded up (slow), core 1 fast.
        let s = WeightedSplit::new(4, &[2.0, 1.0]);
        assert_eq!(s.counts, vec![3, 1]);
        assert_eq!(s.slow_cores, 1);
        assert_eq!(s.fast_cores, 1);
        assert_eq!(weighted_balancing_steps(4, &[2.0, 1.0]), 2);
        // The static weighted split runs at min(2/3, 1/1) = 2/3 of a
        // reference core; rotation targets the capacity share 3/4.
        assert!((s.application_speed(&[2.0, 1.0]) - 2.0 / 3.0).abs() < 1e-12);
        assert!((capacity_share(4, &[2.0, 1.0]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn exact_apportionment_is_balanced() {
        // Speeds [2, 1, 1] with 4 threads: quotas [2, 1, 1] exactly.
        let s = WeightedSplit::new(4, &[2.0, 1.0, 1.0]);
        assert_eq!(s.counts, vec![2, 1, 1]);
        assert!(s.balanced());
        assert_eq!(weighted_balancing_steps(4, &[2.0, 1.0, 1.0]), 0);
    }

    #[test]
    fn very_slow_core_can_get_zero_threads() {
        let s = WeightedSplit::new(2, &[10.0, 0.1]);
        assert_eq!(s.counts, vec![2, 0]);
        // application_speed skips the empty core.
        assert!((s.application_speed(&[10.0, 0.1]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn big_little_preset_shape() {
        // The 4P+8E preset: speeds [1.0×4, 0.55×8], 16 threads.
        let mut speeds = vec![1.0; 4];
        speeds.extend(std::iter::repeat_n(0.55, 8));
        let s = WeightedSplit::new(16, &speeds);
        assert_eq!(s.counts.iter().sum::<u32>(), 16);
        // P cores must each carry at least as much as any E core.
        let p_min = s.counts[..4].iter().min().unwrap();
        let e_max = s.counts[4..].iter().max().unwrap();
        assert!(p_min >= e_max, "counts {:?}", s.counts);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn rejects_zero_capacity() {
        WeightedSplit::new(4, &[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one thread per core")]
    fn rejects_undersubscription() {
        WeightedSplit::new(2, &[1.0, 1.0, 1.0]);
    }

    proptest! {
        #[test]
        fn reduces_to_uniform_threadsplit(
            n in 1u32..512, m in 1usize..64, s in 0.1f64..8.0
        ) {
            prop_assume!(n as usize >= m);
            let speeds = vec![s; m];
            let w = WeightedSplit::new(n, &speeds);
            let u = ThreadSplit::new(n, m as u32);
            prop_assert_eq!(w.slow_cores, u.slow_cores);
            prop_assert_eq!(w.fast_cores, u.fast_cores);
            // First SQ cores take T+1 (tie-break by index), rest take T.
            for (j, c) in w.counts.iter().enumerate() {
                let expect = if (j as u32) < u.slow_cores { u.t + 1 } else { u.t };
                prop_assert_eq!(*c, expect);
            }
            prop_assert_eq!(
                weighted_balancing_steps(n, &speeds),
                balancing_steps(n, m as u32)
            );
        }

        #[test]
        fn counts_conserve_and_bracket_quota(
            n in 1u32..256,
            speeds in proptest::collection::vec(0.05f64..10.0, 1..24)
        ) {
            prop_assume!(n as usize >= speeds.len());
            let w = WeightedSplit::new(n, &speeds);
            prop_assert_eq!(w.counts.iter().sum::<u32>(), n);
            prop_assert_eq!(w.slow_cores + w.fast_cores, speeds.len() as u32);
            // Largest-remainder counts stay within one of the quota.
            for (c, q) in w.counts.iter().zip(w.quotas.iter()) {
                prop_assert!((*c as f64) >= q.floor() - 1e-9);
                prop_assert!((*c as f64) <= q.floor() + 1.0 + 1e-9);
            }
        }

        #[test]
        fn static_speed_never_beats_capacity_share(
            n in 1u32..256,
            speeds in proptest::collection::vec(0.05f64..10.0, 1..24)
        ) {
            prop_assume!(n as usize >= speeds.len());
            let w = WeightedSplit::new(n, &speeds);
            // The slowest static thread cannot exceed the egalitarian
            // rotation share.
            prop_assert!(
                w.application_speed(&speeds) <= capacity_share(n, &speeds) + 1e-9
            );
        }
    }
}
