//! Lemma 1 and the profitability threshold.

use serde::{Deserialize, Serialize};

/// The fast/slow queue decomposition of `N` threads on `M` cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadSplit {
    /// Threads per fast core: `T = ⌊N/M⌋`.
    pub t: u32,
    /// Slow cores (run `T+1` threads): `SQ = N mod M`.
    pub slow_cores: u32,
    /// Fast cores (run `T` threads): `FQ = M − SQ`.
    pub fast_cores: u32,
}

impl ThreadSplit {
    /// Decomposes `n` threads over `m` cores. Requires `n ≥ m ≥ 1` (fewer
    /// threads than cores means no slow queues and nothing to balance).
    pub fn new(n: u32, m: u32) -> ThreadSplit {
        assert!(m >= 1, "need at least one core");
        assert!(n >= m, "analysis assumes at least one thread per core");
        ThreadSplit {
            t: n / m,
            slow_cores: n % m,
            fast_cores: m - n % m,
        }
    }

    /// True iff the distribution is already even (no slow cores).
    pub fn balanced(&self) -> bool {
        self.slow_cores == 0
    }
}

/// **Lemma 1**: the number of balancing steps needed so that every thread
/// has run on a fast core at least once is bounded by `2·⌈SQ/FQ⌉`
/// (and by 2 when `FQ ≥ SQ`). Zero when already balanced.
pub fn balancing_steps(n: u32, m: u32) -> u32 {
    let s = ThreadSplit::new(n, m);
    if s.balanced() {
        return 0;
    }
    2 * s.slow_cores.div_ceil(s.fast_cores)
}

/// The profitability threshold on the inter-barrier computation time `S`
/// (same time unit as the balance interval `b`): speed balancing is
/// expected to beat queue-length balancing when the total program time
/// `(T+1)·S` exceeds the balancing steps times `b`, i.e.
/// `S > 2·⌈SQ/FQ⌉·b / (T+1)`.
///
/// Returns 0.0 for balanced distributions (speed balancing can never lose;
/// it simply has nothing to do).
pub fn min_profitable_granularity(n: u32, m: u32, b: f64) -> f64 {
    assert!(b > 0.0, "balance interval must be positive");
    let s = ThreadSplit::new(n, m);
    if s.balanced() {
        return 0.0;
    }
    let steps = balancing_steps(n, m) as f64;
    steps * b / (s.t as f64 + 1.0)
}

/// Predicate form: is speed balancing expected to be profitable for
/// inter-barrier granularity `granularity` at balance interval `b`?
/// "Below this threshold the two algorithms are likely to provide similar
/// performance" — not worse, so equality counts as not-yet-profitable.
pub fn is_profitable(n: u32, m: u32, granularity: f64, b: f64) -> bool {
    granularity > min_profitable_granularity(n, m, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn split_three_on_two() {
        // The running example: 3 threads on 2 cores.
        let s = ThreadSplit::new(3, 2);
        assert_eq!(s.t, 1);
        assert_eq!(s.slow_cores, 1);
        assert_eq!(s.fast_cores, 1);
        assert!(!s.balanced());
    }

    #[test]
    fn split_even() {
        let s = ThreadSplit::new(16, 4);
        assert_eq!(s.t, 4);
        assert!(s.balanced());
        assert_eq!(s.fast_cores, 4);
    }

    #[test]
    fn steps_for_three_on_two() {
        // FQ = SQ = 1: "for FQ >= SQ two steps are needed".
        assert_eq!(balancing_steps(3, 2), 2);
    }

    #[test]
    fn steps_zero_when_balanced() {
        assert_eq!(balancing_steps(16, 16), 0);
        assert_eq!(balancing_steps(32, 16), 0);
    }

    #[test]
    fn steps_worst_case_many_slow() {
        // 2 threads per core on all but one core: SQ = M-1, FQ = 1.
        let m = 10;
        let n = 2 * m - 1;
        assert_eq!(balancing_steps(n, m), 2 * (m - 1));
    }

    #[test]
    fn threshold_three_on_two() {
        // S_min = 2 * 1 / (1+1) = 1 balance interval.
        assert!((min_profitable_granularity(3, 2, 1.0) - 1.0).abs() < 1e-12);
        // With B = 100 ms, the threshold is 100 ms of computation.
        assert!((min_profitable_granularity(3, 2, 0.1) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn threshold_falls_with_more_threads() {
        // "For a fixed number of cores, increasing the number of threads
        // decreases the restrictions on the minimum value of S."
        let m = 16;
        let coarse = min_profitable_granularity(m + 1, m, 1.0);
        let fine = min_profitable_granularity(8 * m + 1, m, 1.0);
        assert!(fine < coarse, "fine={fine} coarse={coarse}");
    }

    #[test]
    fn threshold_rises_with_more_cores() {
        // "Increasing the number of cores increases the minimum value of S"
        // along the worst-case diagonal.
        let worst = |m: u32| min_profitable_granularity(2 * m - 1, m, 1.0);
        assert!(worst(100) > worst(10));
    }

    #[test]
    fn profitability_predicate() {
        assert!(is_profitable(3, 2, 1.5, 1.0));
        assert!(!is_profitable(3, 2, 0.5, 1.0));
        assert!(!is_profitable(3, 2, 1.0, 1.0), "equality is not profit");
        // Balanced: any positive granularity counts as profitable (nothing
        // to lose).
        assert!(is_profitable(4, 2, 0.001, 1.0));
    }

    #[test]
    #[should_panic(expected = "at least one thread per core")]
    fn rejects_undersubscription() {
        ThreadSplit::new(3, 4);
    }

    proptest! {
        #[test]
        fn split_partitions_cores(n in 1u32..512, m in 1u32..128) {
            prop_assume!(n >= m);
            let s = ThreadSplit::new(n, m);
            prop_assert_eq!(s.slow_cores + s.fast_cores, m);
            // Thread conservation: T threads on fast + (T+1) on slow = N.
            prop_assert_eq!(
                s.fast_cores * s.t + s.slow_cores * (s.t + 1),
                n
            );
        }

        #[test]
        fn steps_bound_matches_lemma(n in 1u32..512, m in 2u32..128) {
            prop_assume!(n > m);
            let s = ThreadSplit::new(n, m);
            let steps = balancing_steps(n, m);
            if s.balanced() {
                prop_assert_eq!(steps, 0);
            } else if s.fast_cores >= s.slow_cores {
                prop_assert_eq!(steps, 2);
            } else {
                prop_assert_eq!(steps, 2 * s.slow_cores.div_ceil(s.fast_cores));
                prop_assert!(steps > 2);
            }
        }

        #[test]
        fn threshold_scales_linearly_in_b(n in 2u32..256, m in 2u32..64, b in 0.01f64..10.0) {
            prop_assume!(n > m);
            let unit = min_profitable_granularity(n, m, 1.0);
            let scaled = min_profitable_granularity(n, m, b);
            prop_assert!((scaled - unit * b).abs() < 1e-9 * (1.0 + unit * b));
        }
    }
}
