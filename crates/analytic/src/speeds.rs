//! Closed-form per-thread speeds for the balancing policies the paper
//! compares (Sections 3–4).
//!
//! "Speed" here is the fraction of a dedicated core's throughput the
//! application's *slowest* thread obtains — which, for barrier-synchronized
//! SPMD code, is the application's speed.

use crate::lemma::ThreadSplit;

/// Application speed under queue-length balancing (Linux), which leaves the
/// `N mod M ≠ 0` imbalance in place: the slowest thread shares a slow core
/// with `T` others forever, so the application runs at `1/(T+1)`.
///
/// For the 3-threads / 2-cores example this is 1/2 — "the application will
/// perceive the system as running at 50% speed".
pub fn queue_length_speed(n: u32, m: u32) -> f64 {
    let s = ThreadSplit::new(n, m);
    if s.balanced() {
        // Perfectly divisible: every core runs exactly T threads.
        return 1.0 / s.t as f64;
    }
    1.0 / (s.t as f64 + 1.0)
}

/// Asymptotic application speed under ideal speed balancing: every thread
/// spends an equal fraction of time on fast and slow cores, so each runs at
/// `½(1/T + 1/(T+1))`. For 3-on-2 this is 3/4.
pub fn ideal_speed(n: u32, m: u32) -> f64 {
    let s = ThreadSplit::new(n, m);
    if s.balanced() {
        return 1.0 / s.t as f64;
    }
    0.5 * (1.0 / s.t as f64 + 1.0 / (s.t as f64 + 1.0))
}

/// Application speed when a *fair global* scheduler (DWRR-style) equalizes
/// CPU time across all `N` threads on `M` cores by repeated migration:
/// every thread gets `M/N` of a core. For 3-on-2 this is 2/3 — "the
/// application perceives the system as running at 66% speed".
pub fn repeated_migration_speed(n: u32, m: u32) -> f64 {
    assert!(n >= m && m >= 1);
    m as f64 / n as f64
}

/// The asymptotic speedup of speed balancing over queue-length balancing:
/// `(2T+1)/(2T)` — "a possible speedup of 1 + 1/(2T)". 1.0 when balanced.
pub fn speedup_bound(n: u32, m: u32) -> f64 {
    let s = ThreadSplit::new(n, m);
    if s.balanced() {
        return 1.0;
    }
    let t = s.t as f64;
    (2.0 * t + 1.0) / (2.0 * t)
}

/// Expected makespan of an SPMD program with per-thread work `work` (in
/// seconds on a dedicated core) running at application speed `speed`.
pub fn makespan(work: f64, speed: f64) -> f64 {
    assert!(speed > 0.0);
    work / speed
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_three_on_two() {
        // Section 3: static = 50%, DWRR-style repeated migration = 66%,
        // ideal speed balancing = 75%.
        assert!((queue_length_speed(3, 2) - 0.5).abs() < 1e-12);
        assert!((repeated_migration_speed(3, 2) - 2.0 / 3.0).abs() < 1e-12);
        assert!((ideal_speed(3, 2) - 0.75).abs() < 1e-12);
        // Speedup bound (2T+1)/2T with T = 1: 1.5x.
        assert!((speedup_bound(3, 2) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn balanced_case_all_equal() {
        // 16 threads on 16 cores: every policy gives full speed.
        assert!((queue_length_speed(16, 16) - 1.0).abs() < 1e-12);
        assert!((ideal_speed(16, 16) - 1.0).abs() < 1e-12);
        assert!((repeated_migration_speed(16, 16) - 1.0).abs() < 1e-12);
        assert_eq!(speedup_bound(16, 16), 1.0);
    }

    #[test]
    fn seventeen_on_sixteen() {
        // One oversubscribed core: Linux halves the app, speed balancing
        // nearly hides it.
        assert!((queue_length_speed(17, 16) - 0.5).abs() < 1e-12);
        assert!((ideal_speed(17, 16) - 0.75).abs() < 1e-12);
        assert!((repeated_migration_speed(17, 16) - 16.0 / 17.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_inverts_speed() {
        assert!((makespan(10.0, 0.5) - 20.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn ordering_static_le_ideal(n in 2u32..512, m in 1u32..128) {
            prop_assume!(n >= m);
            let ql = queue_length_speed(n, m);
            let ideal = ideal_speed(n, m);
            prop_assert!(ql <= ideal + 1e-12);
            // And the ideal never exceeds a fair share ceiling of 1/T.
            let t = (n / m) as f64;
            prop_assert!(ideal <= 1.0 / t + 1e-12);
        }

        #[test]
        fn speedup_bound_consistent(n in 2u32..512, m in 1u32..128) {
            prop_assume!(n > m);
            let ratio = ideal_speed(n, m) / queue_length_speed(n, m);
            let bound = speedup_bound(n, m);
            // The bound is exactly the ideal/static ratio for unbalanced
            // splits.
            if n % m != 0 {
                prop_assert!((ratio - bound).abs() < 1e-9);
            }
            prop_assert!(bound >= 1.0);
            prop_assert!(bound <= 1.5 + 1e-12, "max speedup at T=1");
        }

        #[test]
        fn dwrr_between_static_and_one(n in 2u32..512, m in 1u32..128) {
            prop_assume!(n > m && n % m != 0);
            let ql = queue_length_speed(n, m);
            let fair = repeated_migration_speed(n, m);
            prop_assert!(fair >= ql - 1e-12);
            prop_assert!(fair <= 1.0);
        }
    }
}
