//! Integration tests: the balancer against concurrent thread churn.
//!
//! These drive a running [`NativeSpeedBalancer`] from a *separate* test
//! thread that spawns and exits target threads through the shared
//! [`MockProc`] while the balancer's scans are in flight — the genuinely
//! concurrent version of the churn scenarios (the unit tests script
//! lifetimes up front). The assertions are the hardening contract: no
//! panic, every generation of threads gets adopted, and speed accounting
//! stays monotone (CPU-time deltas never go negative, so no speed sample
//! is ever below zero).

use speedbal_native::{
    Fault, GlobalFault, MockProc, NativeConfig, NativeSpeedBalancer, ProcSource,
};
use speedbal_trace::{TraceConfig, TraceEvent};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn churn_cfg() -> NativeConfig {
    NativeConfig {
        interval: ms(50),
        startup_delay: ms(10),
        quarantine_cooldown: ms(300),
        ..NativeConfig::default()
    }
}

/// `list_tids` under concurrent thread exit: a driver thread churns the
/// target's thread set through the live mock while the balancer scans it.
/// The run must survive to the scripted process exit with every thread
/// generation adopted and nothing quarantined (exits are not failures).
#[test]
fn list_tids_survives_concurrent_thread_exit() {
    let mock = Arc::new(
        MockProc::builder(50_001, 2)
            .thread(1)
            .thread(2)
            .thread(3)
            .process_exits_at(Duration::from_secs(3))
            .build(),
    );
    let topo = mock.topology();
    let bal = NativeSpeedBalancer::attach_with_source(mock.pid(), churn_cfg(), mock.clone(), topo)
        .expect("attach");

    let driver = {
        let mock = Arc::clone(&mock);
        std::thread::spawn(move || {
            // Wait (in real time) until the balancer's workers are
            // driving the virtual clock: sleeping earlier would advance
            // time solo and run all the churn before the balancer starts.
            while mock.virtual_now() < ms(15) {
                std::thread::yield_now();
            }
            // Join the lockstep rendezvous as a third clock participant,
            // so spawns and exits interleave with live balance intervals
            // rather than racing ahead of them. Tids grow monotonically —
            // a tid is never recycled.
            mock.worker_started();
            let mut next_tid = 100;
            while mock.process_alive(50_001) && mock.virtual_now() < ms(2_000) {
                mock.spawn_thread(next_tid);
                mock.sleep(ms(120));
                if mock.process_alive(50_001) {
                    mock.exit_thread(next_tid);
                }
                next_tid += 1;
                mock.sleep(ms(40));
            }
            mock.worker_stopped();
        })
    };

    let stop = AtomicBool::new(false);
    let stats = bal.run(&stop);
    driver.join().expect("driver thread must not panic");

    assert!(
        mock.virtual_now() >= Duration::from_secs(3),
        "run must survive to the scripted process exit"
    );
    let seen = stats.threads_seen.load(Ordering::Relaxed);
    assert!(
        seen >= 3 + 3,
        "3 permanent + every churned generation must be adopted, saw {seen}"
    );
    assert_eq!(
        stats.quarantines.load(Ordering::Relaxed),
        0,
        "clean exits must never be treated as failures"
    );
}

/// Monotone speed accounting under churn: run traced, then check every
/// recorded speed sample. A negative speed would mean a thread's
/// cumulative CPU time went backwards in the balancer's books (e.g. a
/// sample surviving a vanish/re-adopt cycle with stale state).
#[test]
fn speed_accounting_stays_monotone_under_churn() {
    let mock = Arc::new(
        MockProc::builder(50_002, 2)
            .thread(1)
            .thread(2)
            .thread_spanning(3, ms(0), Some(ms(800)))
            .thread_spanning(4, ms(500), Some(ms(1_900)))
            .thread_spanning(5, ms(1_200), None)
            .process_exits_at(Duration::from_secs(3))
            .build(),
    );
    // Vanish-races and torn reads on top of the churn.
    mock.inject(1, Fault::VanishReads(2));
    mock.inject(2, Fault::MalformedReads(2));
    let topo = mock.topology();
    let bal = NativeSpeedBalancer::attach_with_source(mock.pid(), churn_cfg(), mock.clone(), topo)
        .expect("attach");

    let stop = AtomicBool::new(false);
    let (stats, trace) = bal.run_traced(&stop, TraceConfig::default());

    let mut samples = 0usize;
    for rec in trace.records() {
        if let TraceEvent::SpeedSample { task, speed } = &rec.event {
            samples += 1;
            assert!(
                *speed >= 0.0,
                "negative speed for task {task:?}: CPU accounting went backwards"
            );
            assert!(speed.is_finite(), "speed sample must be finite");
        }
    }
    assert!(samples > 0, "a 3s traced run must record speed samples");
    assert!(
        stats.retries.load(Ordering::Relaxed) > 0,
        "torn reads must retry"
    );
    assert!(
        stats.threads_seen.load(Ordering::Relaxed) >= 5,
        "every scripted generation must be adopted"
    );
}

/// The acceptance bar from the issue: thread exit mid-scan + EPERM
/// affinity + malformed stat, all at once, without panicking — and the
/// balancer keeps balancing the healthy threads.
#[test]
fn kitchen_sink_churn_eperm_malformed_survives() {
    let mock = Arc::new(
        MockProc::builder(50_003, 2)
            .thread(1)
            .thread(2)
            .thread(3)
            .thread_spanning(4, ms(0), Some(ms(900)))
            .process_exits_at(Duration::from_secs(4))
            .build(),
    );
    mock.inject(1, Fault::VanishReads(3));
    mock.inject(2, Fault::EpermPinsForever);
    mock.inject(3, Fault::MalformedReads(2));
    mock.inject_global(GlobalFault::ListIoErrors(2));
    let topo = mock.topology();
    let bal = NativeSpeedBalancer::attach_with_source(mock.pid(), churn_cfg(), mock.clone(), topo)
        .expect("attach");

    let stop = AtomicBool::new(false);
    let stats = bal.run(&stop);

    assert!(mock.virtual_now() >= Duration::from_secs(4));
    assert!(stats.activations.load(Ordering::Relaxed) > 0);
    assert!(stats.proc_faults.load(Ordering::Relaxed) > 0);
    assert!(
        stats.quarantines.load(Ordering::Relaxed) > 0,
        "the EPERM-forever thread must end up quarantined"
    );
    // The healthy threads (1, 3 after their bursts drain, plus 4 until it
    // exits) must still have been adopted and measured.
    assert!(stats.threads_seen.load(Ordering::Relaxed) >= 3);
}
