//! `sched_setaffinity` bindings: the migration mechanism.
//!
//! "The `sched_setaffinity` system call is also used to migrate threads
//! when balancing. \[It\] forces a task to be moved immediately to another
//! core ... Any thread migrated using `sched_setaffinity` is fixed to the
//! new core; Linux will not attempt to move it when doing load balancing."

use std::io;
use std::mem;

/// Returns the set of CPUs the thread may run on.
pub fn get_affinity(tid: i32) -> io::Result<Vec<usize>> {
    // SAFETY: cpu_set_t is a plain bitmask struct; zeroed is a valid value
    // and the kernel writes at most `size_of::<cpu_set_t>()` bytes.
    unsafe {
        let mut set: libc::cpu_set_t = mem::zeroed();
        let rc = libc::sched_getaffinity(tid, mem::size_of::<libc::cpu_set_t>(), &mut set);
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        let mut cpus = Vec::new();
        for cpu in 0..libc::CPU_SETSIZE as usize {
            if libc::CPU_ISSET(cpu, &set) {
                cpus.push(cpu);
            }
        }
        Ok(cpus)
    }
}

/// Restricts the thread to the given CPUs.
pub fn set_affinity(tid: i32, cpus: &[usize]) -> io::Result<()> {
    if cpus.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "empty CPU set"));
    }
    // SAFETY: as above; CPU_SET only writes within the set.
    unsafe {
        let mut set: libc::cpu_set_t = mem::zeroed();
        for &cpu in cpus {
            if cpu >= libc::CPU_SETSIZE as usize {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("cpu {cpu} beyond CPU_SETSIZE"),
                ));
            }
            libc::CPU_SET(cpu, &mut set);
        }
        let rc = libc::sched_setaffinity(tid, mem::size_of::<libc::cpu_set_t>(), &set);
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

/// Pins a thread to exactly one CPU — the paper's placement and migration
/// primitive (a one-CPU mask both moves the thread immediately and keeps
/// the kernel balancer away from it).
pub fn pin_to_cpu(tid: i32, cpu: usize) -> io::Result<()> {
    set_affinity(tid, &[cpu])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn own_tid() -> i32 {
        // SAFETY: trivial syscall wrapper.
        unsafe { libc::gettid() }
    }

    #[test]
    fn roundtrip_on_own_thread() {
        let tid = own_tid();
        let original = get_affinity(tid).expect("read own affinity");
        assert!(!original.is_empty());
        // Pin to the first allowed CPU and observe the narrowed mask.
        let target = original[0];
        pin_to_cpu(tid, target).expect("pin");
        let narrowed = get_affinity(tid).expect("read after pin");
        assert_eq!(narrowed, vec![target]);
        // Restore.
        set_affinity(tid, &original).expect("restore");
        assert_eq!(get_affinity(tid).unwrap(), original);
    }

    #[test]
    fn rejects_empty_and_out_of_range() {
        let tid = own_tid();
        assert!(set_affinity(tid, &[]).is_err());
        assert!(set_affinity(tid, &[libc::CPU_SETSIZE as usize + 5]).is_err());
    }

    #[test]
    fn pinning_takes_effect_immediately() {
        let tid = own_tid();
        let original = get_affinity(tid).unwrap();
        pin_to_cpu(tid, original[0]).unwrap();
        // sched_getcpu must report the pinned CPU once we are running again.
        // SAFETY: trivial syscall.
        let cpu = unsafe { libc::sched_getcpu() };
        assert_eq!(cpu as usize, original[0]);
        set_affinity(tid, &original).unwrap();
    }
}
