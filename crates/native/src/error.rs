//! Typed errors for `/proc` and affinity operations.
//!
//! The paper's balancer lives entirely in user space and observes the
//! target through `/proc`, a surface that is *allowed* to lie to it:
//! threads exit between `readdir` and `read` ("threads that exit mid-scan
//! are simply absent — callers must tolerate churn"), affinity calls fail
//! with `EPERM` on hardened targets, and a stat read can race a process
//! teardown. Every fallible operation in this crate therefore returns a
//! [`ProcError`] that classifies the failure by *what the balancer should
//! do about it* rather than by raw errno.

use std::fmt;
use std::io;

/// What went wrong with a `/proc` read or an affinity call, classified by
/// the recovery action it calls for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcError {
    /// The thread (or whole process) no longer exists — `ENOENT`/`ESRCH`.
    /// Permanent for this tid: forget it, do not retry.
    Vanished,
    /// The kernel refused the operation (`EPERM`/`EACCES`), e.g.
    /// `sched_setaffinity` on a target owned by another user. Not
    /// transient, but the tid may still be measurable — callers count it
    /// toward quarantine instead of retrying.
    PermissionDenied,
    /// A `stat` line (or other procfs content) did not parse. Usually a
    /// torn or truncated read; worth one bounded retry.
    Malformed(String),
    /// Any other I/O error (`EAGAIN`, interrupted reads, ...). Transient:
    /// retry with backoff.
    Io(io::ErrorKind),
}

impl ProcError {
    /// True for failures where an immediate bounded retry can help
    /// (torn reads, transient I/O). `Vanished` and `PermissionDenied`
    /// never benefit from retrying.
    pub fn is_transient(&self) -> bool {
        matches!(self, ProcError::Malformed(_) | ProcError::Io(_))
    }

    /// Classifies a raw [`io::Error`] from a procfs read or affinity
    /// syscall.
    pub fn from_io(e: &io::Error) -> ProcError {
        match e.raw_os_error() {
            Some(libc::ESRCH) | Some(libc::ENOENT) => return ProcError::Vanished,
            Some(libc::EPERM) | Some(libc::EACCES) => return ProcError::PermissionDenied,
            _ => {}
        }
        match e.kind() {
            io::ErrorKind::NotFound => ProcError::Vanished,
            io::ErrorKind::PermissionDenied => ProcError::PermissionDenied,
            io::ErrorKind::InvalidData => ProcError::Malformed(e.to_string()),
            kind => ProcError::Io(kind),
        }
    }

    /// Short stable label (mirrors the trace crate's fault-kind labels).
    pub fn label(&self) -> &'static str {
        match self {
            ProcError::Vanished => "vanished",
            ProcError::PermissionDenied => "eperm",
            ProcError::Malformed(_) => "malformed",
            ProcError::Io(_) => "io",
        }
    }
}

impl fmt::Display for ProcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcError::Vanished => write!(f, "thread or process vanished"),
            ProcError::PermissionDenied => write!(f, "operation not permitted"),
            ProcError::Malformed(why) => write!(f, "malformed procfs content: {why}"),
            ProcError::Io(kind) => write!(f, "procfs I/O error: {kind:?}"),
        }
    }
}

impl std::error::Error for ProcError {}

impl From<io::Error> for ProcError {
    fn from(e: io::Error) -> ProcError {
        ProcError::from_io(&e)
    }
}

impl From<ProcError> for io::Error {
    fn from(e: ProcError) -> io::Error {
        let kind = match &e {
            ProcError::Vanished => io::ErrorKind::NotFound,
            ProcError::PermissionDenied => io::ErrorKind::PermissionDenied,
            ProcError::Malformed(_) => io::ErrorKind::InvalidData,
            ProcError::Io(kind) => *kind,
        };
        io::Error::new(kind, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_classification() {
        let esrch = io::Error::from_raw_os_error(libc::ESRCH);
        assert_eq!(ProcError::from_io(&esrch), ProcError::Vanished);
        let enoent = io::Error::from_raw_os_error(libc::ENOENT);
        assert_eq!(ProcError::from_io(&enoent), ProcError::Vanished);
        let eperm = io::Error::from_raw_os_error(libc::EPERM);
        assert_eq!(ProcError::from_io(&eperm), ProcError::PermissionDenied);
        let eacces = io::Error::from_raw_os_error(libc::EACCES);
        assert_eq!(ProcError::from_io(&eacces), ProcError::PermissionDenied);
    }

    #[test]
    fn transience() {
        assert!(!ProcError::Vanished.is_transient());
        assert!(!ProcError::PermissionDenied.is_transient());
        assert!(ProcError::Malformed("x".into()).is_transient());
        assert!(ProcError::Io(io::ErrorKind::Interrupted).is_transient());
    }

    #[test]
    fn io_roundtrip_keeps_kind() {
        let e: io::Error = ProcError::Vanished.into();
        assert_eq!(e.kind(), io::ErrorKind::NotFound);
        let e: io::Error = ProcError::PermissionDenied.into();
        assert_eq!(e.kind(), io::ErrorKind::PermissionDenied);
    }
}
