//! The [`ProcSource`] abstraction: everything the balancer needs from the
//! operating system, behind one trait.
//!
//! The paper's `speedbalancer` touches the OS in exactly four ways: it
//! lists a process's threads (`/proc/<pid>/task`), reads per-thread CPU
//! time (`/proc/.../stat`), re-pins threads (`sched_setaffinity`) and
//! sleeps between balance intervals. [`ProcSource`] captures that surface
//! — including the clock, so that a mock backend can run balance
//! intervals in *virtual* time — which lets the whole balancing loop run
//! deterministically against the in-memory [`MockProc`](crate::MockProc)
//! with scripted fault injection, while production uses [`RealProc`].

use crate::affinity;
use crate::error::ProcError;
use crate::proc::{self, ThreadTimes};
use std::time::{Duration, Instant};

/// The balancer's view of the operating system: thread discovery, CPU-time
/// accounting, affinity control, liveness, and time.
///
/// All methods take `&self` and implementations must be thread-safe: the
/// balancer runs one loop per managed core and they share one source.
///
/// # Failure contract
///
/// Implementations classify failures via [`ProcError`]:
/// [`ProcError::Vanished`] means the tid/pid is gone for good (callers
/// forget it), [`ProcError::PermissionDenied`] means the call will keep
/// failing until privileges change (callers quarantine), and transient
/// kinds ([`ProcError::Malformed`], [`ProcError::Io`]) are worth a bounded
/// retry.
pub trait ProcSource: Send + Sync {
    /// Thread ids of `pid`, sorted ascending, main thread included.
    /// Threads that exit mid-scan are simply absent — callers must
    /// tolerate churn.
    fn list_tids(&self, pid: i32) -> Result<Vec<i32>, ProcError>;

    /// Cumulative CPU time (utime+stime) of one thread.
    fn thread_cpu_time(&self, pid: i32, tid: i32) -> Result<ThreadTimes, ProcError>;

    /// Restricts `tid` to a single CPU — the paper's placement *and*
    /// migration primitive.
    fn pin_to_cpu(&self, tid: i32, cpu: usize) -> Result<(), ProcError>;

    /// True iff `pid` exists and is not a zombie.
    fn process_alive(&self, pid: i32) -> bool;

    /// Monotonic time since the source was created. Real sources report
    /// wall-clock time; mocks report a virtual clock advanced by
    /// [`sleep`](ProcSource::sleep).
    fn now(&self) -> Duration;

    /// Blocks the calling balancer thread for `d` (of this source's
    /// clock). Mock sources advance virtual time instead of blocking, so
    /// fault-injection tests run in microseconds of wall time.
    ///
    /// **Lock discipline**: balancer code must never call `sleep` while
    /// holding a lock another balancer thread needs before *its* next
    /// `sleep` — virtual-time sources run sleepers in lockstep (see
    /// [`worker_started`](ProcSource::worker_started)), so a sleeping
    /// lock-holder would stall the clock for everyone.
    fn sleep(&self, d: Duration);

    /// Registers one balancer worker thread with the source's clock.
    ///
    /// Called once per worker *before* the workers start. Virtual-time
    /// sources use the registration count to run [`sleep`](ProcSource::sleep)
    /// as a rendezvous: the clock only advances (to the earliest pending
    /// deadline) once every registered worker is asleep, so no worker can
    /// race ahead and starve the others of virtual time — interleavings
    /// that cannot happen on a real clock cannot happen on the mock one
    /// either. Real sources ignore this (the OS scheduler provides
    /// fairness).
    fn worker_started(&self) {}

    /// Deregisters one balancer worker (the worker itself calls this on
    /// exit, including early exits). See
    /// [`worker_started`](ProcSource::worker_started).
    fn worker_stopped(&self) {}
}

/// The production backend: real `/proc`, real `sched_setaffinity`, the
/// real monotonic clock.
#[derive(Debug)]
pub struct RealProc {
    epoch: Instant,
}

impl RealProc {
    /// A real-procfs source whose clock starts now.
    pub fn new() -> RealProc {
        RealProc {
            epoch: Instant::now(),
        }
    }
}

impl Default for RealProc {
    fn default() -> Self {
        RealProc::new()
    }
}

impl ProcSource for RealProc {
    fn list_tids(&self, pid: i32) -> Result<Vec<i32>, ProcError> {
        proc::list_tids(pid)
    }

    fn thread_cpu_time(&self, pid: i32, tid: i32) -> Result<ThreadTimes, ProcError> {
        proc::read_thread_cpu_time(pid, tid)
    }

    fn pin_to_cpu(&self, tid: i32, cpu: usize) -> Result<(), ProcError> {
        affinity::pin_to_cpu(tid, cpu).map_err(|e| ProcError::from_io(&e))
    }

    fn process_alive(&self, pid: i32) -> bool {
        proc::process_alive(pid)
    }

    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_proc_sees_own_process() {
        let src = RealProc::new();
        let pid = std::process::id() as i32;
        assert!(src.process_alive(pid));
        assert!(!src.process_alive(-1));
        let tids = src.list_tids(pid).expect("own tids");
        assert!(tids.contains(&pid));
        let t = src.thread_cpu_time(pid, pid).expect("own stat");
        assert!(t.total() < Duration::from_secs(3600));
    }

    #[test]
    fn real_proc_classifies_vanished() {
        let src = RealProc::new();
        // No pid -1 ever exists.
        assert_eq!(src.list_tids(-1).unwrap_err(), ProcError::Vanished);
        assert_eq!(
            src.thread_cpu_time(-1, -1).unwrap_err(),
            ProcError::Vanished
        );
    }

    #[test]
    fn real_clock_advances_with_sleep() {
        let src = RealProc::new();
        let a = src.now();
        src.sleep(Duration::from_millis(2));
        assert!(src.now() >= a + Duration::from_millis(1));
    }
}
