//! `speedbalancer` — the paper's stand-alone user-level balancer.
//!
//! ```text
//! speedbalancer [options] -- <command> [args...]   # launch and balance
//! speedbalancer [options] --pid <pid>              # attach to a process
//! speedbalancer --demo-worker <threads> <seconds>  # built-in spin workload
//!
//! options:
//!   -i, --interval <ms>     balance interval (default 100, the paper's B)
//!   -t, --threshold <f>     pull threshold T_s (default 0.9)
//!   --allow-numa            allow cross-NUMA-node migrations
//!   --cores <cpulist>       manage only these CPUs (e.g. "0-3,8")
//!   --startup-delay <ms>    delay before the first /proc scan (default 20)
//!   --max-retries <n>       bounded retries for transient read failures
//!                           (default 2; vanished/EPERM never retry)
//!   --quarantine-after <n>  consecutive failures before a thread is
//!                           quarantined (default 3)
//!   --quarantine-cooldown <ms>
//!                           how long a quarantined thread is ignored
//!                           before re-adoption (default 1000)
//!   --trace-out <file>      record a Chrome trace (speed samples,
//!                           activations, migrations, faults, quarantines;
//!                           load in Perfetto)
//!
//! exit codes: 0 = clean (or the child's own exit code in `--` mode),
//!             1 = cannot attach/launch, 2 = usage error.
//! ```
//!
//! "speedbalancer takes as input the parallel application to balance and
//! forks a child which executes the parallel application" — the `--`
//! form. The demo worker provides a self-contained SPMD-ish workload for
//! the quickstart.

use speedbal_native::balancer::{NativeConfig, NativeSpeedBalancer, NativeStats};
use speedbal_native::topo::parse_cpulist;
use speedbal_trace::{export_chrome, TraceConfig};
use std::process::{exit, Command};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: speedbalancer [-i ms] [-t f] [--allow-numa] [--cores list] \
         [--startup-delay ms] [--max-retries n] [--quarantine-after n] \
         [--quarantine-cooldown ms] [--trace-out file] \
         (--pid P | -- cmd args... | --demo-worker N SECS)"
    );
    exit(2);
}

/// Runs the balancer, dumping a Chrome trace to `trace_out` if requested.
fn run_balancer(
    bal: &NativeSpeedBalancer,
    stop: &AtomicBool,
    trace_out: Option<&str>,
) -> NativeStats {
    match trace_out {
        None => bal.run(stop),
        Some(path) => {
            let (stats, trace) = bal.run_traced(stop, TraceConfig::default());
            match std::fs::write(path, export_chrome(&trace)) {
                Ok(()) => eprintln!("speedbalancer: wrote trace to {path}"),
                Err(e) => eprintln!("speedbalancer: cannot write {path}: {e}"),
            }
            stats
        }
    }
}

fn summarize(stats: &NativeStats) -> String {
    format!(
        "activations={} migrations={} threads={} faults={} retries={} quarantines={}",
        stats.activations.load(Ordering::Relaxed),
        stats.migrations.load(Ordering::Relaxed),
        stats.threads_seen.load(Ordering::Relaxed),
        stats.proc_faults.load(Ordering::Relaxed),
        stats.retries.load(Ordering::Relaxed),
        stats.quarantines.load(Ordering::Relaxed)
    )
}

fn demo_worker(threads: usize, seconds: f64) {
    let deadline = Instant::now() + Duration::from_secs_f64(seconds);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || {
                let mut x = 1u64;
                while Instant::now() < deadline {
                    for _ in 0..100_000 {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                    }
                    std::hint::black_box(x);
                }
            });
        }
    });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = NativeConfig::default();
    let mut pid: Option<i32> = None;
    let mut command: Option<Vec<String>> = None;
    let mut trace_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-i" | "--interval" => {
                i += 1;
                let ms: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                cfg.interval = Duration::from_millis(ms.max(1));
            }
            "-t" | "--threshold" => {
                i += 1;
                let t: f64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                cfg.speed_threshold = t;
            }
            "--allow-numa" => cfg.block_numa = false,
            "--startup-delay" => {
                i += 1;
                let ms: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                cfg.startup_delay = Duration::from_millis(ms);
            }
            "--max-retries" => {
                i += 1;
                cfg.max_read_retries = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--quarantine-after" => {
                i += 1;
                let n: u32 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                cfg.quarantine_after = n.max(1);
            }
            "--quarantine-cooldown" => {
                i += 1;
                let ms: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                cfg.quarantine_cooldown = Duration::from_millis(ms);
            }
            "--trace-out" => {
                i += 1;
                trace_out = Some(args.get(i).unwrap_or_else(|| usage()).clone());
            }
            "--cores" => {
                i += 1;
                let list = args.get(i).unwrap_or_else(|| usage());
                let cpus = parse_cpulist(list);
                if cpus.is_empty() {
                    usage();
                }
                cfg.cores = Some(cpus);
            }
            "--pid" => {
                i += 1;
                pid = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--demo-worker" => {
                let threads: usize = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                let secs: f64 = args
                    .get(i + 2)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                demo_worker(threads, secs);
                return;
            }
            "--" => {
                command = Some(args[i + 1..].to_vec());
                break;
            }
            _ => usage(),
        }
        i += 1;
    }

    let stop = AtomicBool::new(false);
    match (pid, command) {
        (Some(pid), None) => {
            let bal = match NativeSpeedBalancer::attach(pid, cfg) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("speedbalancer: cannot attach to {pid}: {e}");
                    exit(1);
                }
            };
            eprintln!("speedbalancer: attached to pid {pid}");
            let stats = run_balancer(&bal, &stop, trace_out.as_deref());
            eprintln!("speedbalancer: done — {}", summarize(&stats));
        }
        (None, Some(cmd)) if !cmd.is_empty() => {
            let mut child = match Command::new(&cmd[0]).args(&cmd[1..]).spawn() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("speedbalancer: cannot launch {}: {e}", cmd[0]);
                    exit(1);
                }
            };
            let pid = child.id() as i32;
            eprintln!("speedbalancer: balancing `{}` (pid {pid})", cmd.join(" "));
            let bal = match NativeSpeedBalancer::attach(pid, cfg) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("speedbalancer: attach failed: {e}");
                    child.kill().ok();
                    exit(1);
                }
            };
            let stats = run_balancer(&bal, &stop, trace_out.as_deref());
            let status = child.wait().ok();
            eprintln!(
                "speedbalancer: child exited ({:?}) — {}",
                status.map(|s| s.code()),
                summarize(&stats)
            );
            if let Some(code) = status.and_then(|s| s.code()) {
                exit(code);
            }
        }
        _ => usage(),
    }
}
