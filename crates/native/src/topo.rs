//! Topology discovery from sysfs.
//!
//! "The scheduling domains are determined by reading the configuration
//! details from the /sys file system." We read the online CPU list, each
//! CPU's package id, and the NUMA node CPU lists, giving the balancer what
//! it needs to block cross-node migrations and tier migration intervals.

use std::fs;
use std::io;
use std::path::Path;

/// Parses a Linux cpulist string ("0-3,8,10-11") into CPU indices.
///
/// Malformed parts are skipped rather than failing the whole list, the
/// result is sorted, and duplicates collapse:
///
/// ```
/// use speedbal_native::topo::parse_cpulist;
///
/// assert_eq!(parse_cpulist("0-2,8"), vec![0, 1, 2, 8]);
/// assert_eq!(parse_cpulist(" 3 , 1 - 2 "), vec![1, 2, 3]);
/// assert_eq!(parse_cpulist("junk"), Vec::<usize>::new());
/// ```
pub fn parse_cpulist(s: &str) -> Vec<usize> {
    let mut cpus = Vec::new();
    for part in s.trim().split(',') {
        if part.is_empty() {
            continue;
        }
        match part.split_once('-') {
            Some((lo, hi)) => {
                if let (Ok(lo), Ok(hi)) = (lo.trim().parse::<usize>(), hi.trim().parse::<usize>()) {
                    cpus.extend(lo..=hi);
                }
            }
            None => {
                if let Ok(v) = part.trim().parse::<usize>() {
                    cpus.push(v);
                }
            }
        }
    }
    cpus.sort_unstable();
    cpus.dedup();
    cpus
}

/// The online CPUs of this machine.
pub fn online_cpus() -> io::Result<Vec<usize>> {
    let s = fs::read_to_string("/sys/devices/system/cpu/online")?;
    Ok(parse_cpulist(&s))
}

/// Machine layout as discovered from sysfs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NativeTopology {
    /// Online CPU numbers, sorted.
    pub cpus: Vec<usize>,
    /// Package (socket) id per CPU, aligned with `cpus`.
    pub package: Vec<usize>,
    /// NUMA node per CPU, aligned with `cpus` (0 when nodes are absent).
    pub node: Vec<usize>,
}

impl NativeTopology {
    /// A synthetic uniform machine: CPUs `0..n`, one package, one NUMA
    /// node. Pairs with [`MockProc`](crate::MockProc) so balancer tests
    /// never need sysfs.
    pub fn synthetic(n: usize) -> NativeTopology {
        let n = n.max(1);
        NativeTopology {
            cpus: (0..n).collect(),
            package: vec![0; n],
            node: vec![0; n],
        }
    }

    /// Discovers the current machine.
    pub fn discover() -> io::Result<NativeTopology> {
        let cpus = online_cpus()?;
        let mut package = Vec::with_capacity(cpus.len());
        for &cpu in &cpus {
            let path = format!("/sys/devices/system/cpu/cpu{cpu}/topology/physical_package_id");
            let pkg = fs::read_to_string(&path)
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .unwrap_or(0);
            package.push(pkg);
        }
        let mut node = vec![0usize; cpus.len()];
        if let Ok(entries) = fs::read_dir("/sys/devices/system/node") {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                let Some(idx) = name.strip_prefix("node") else {
                    continue;
                };
                let Ok(node_id) = idx.parse::<usize>() else {
                    continue;
                };
                let list = entry.path().join("cpulist");
                if let Ok(s) = fs::read_to_string(&list) {
                    for cpu in parse_cpulist(&s) {
                        if let Some(pos) = cpus.iter().position(|c| *c == cpu) {
                            node[pos] = node_id;
                        }
                    }
                }
            }
        }
        Ok(NativeTopology {
            cpus,
            package,
            node,
        })
    }

    /// Number of online CPUs.
    pub fn n_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// NUMA node of a CPU (by CPU number).
    pub fn node_of(&self, cpu: usize) -> usize {
        self.cpus
            .iter()
            .position(|c| *c == cpu)
            .map(|i| self.node[i])
            .unwrap_or(0)
    }

    /// True iff moving between the two CPUs crosses a NUMA node.
    pub fn crosses_numa(&self, a: usize, b: usize) -> bool {
        self.node_of(a) != self.node_of(b)
    }
}

/// True iff sysfs topology information is present (it is on any modern
/// Linux; containers occasionally hide it).
pub fn sysfs_available() -> bool {
    Path::new("/sys/devices/system/cpu/online").exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpulist_forms() {
        assert_eq!(parse_cpulist("0-3"), vec![0, 1, 2, 3]);
        assert_eq!(parse_cpulist("0,2,4"), vec![0, 2, 4]);
        assert_eq!(parse_cpulist("0-1,8,10-11"), vec![0, 1, 8, 10, 11]);
        assert_eq!(parse_cpulist("5"), vec![5]);
        assert_eq!(parse_cpulist(""), Vec::<usize>::new());
        assert_eq!(parse_cpulist(" 3 , 1 - 2 "), vec![1, 2, 3]);
        assert_eq!(parse_cpulist("junk"), Vec::<usize>::new());
    }

    #[test]
    fn discovers_this_machine() {
        if !sysfs_available() {
            eprintln!("sysfs hidden; skipping");
            return;
        }
        let topo = NativeTopology::discover().expect("discover");
        assert!(topo.n_cpus() >= 1);
        assert_eq!(topo.cpus.len(), topo.package.len());
        assert_eq!(topo.cpus.len(), topo.node.len());
        // Same CPU never crosses NUMA with itself.
        let c0 = topo.cpus[0];
        assert!(!topo.crosses_numa(c0, c0));
    }
}
