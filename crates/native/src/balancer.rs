//! The distributed balancing loop over real threads.

use crate::affinity::pin_to_cpu;
use crate::proc::{list_tids, process_alive, read_thread_cpu_time};
use crate::topo::NativeTopology;
use parking_lot::Mutex;
use speedbal_machine::{CoreId, DomainLevel};
use speedbal_sim::SimTime;
use speedbal_trace::{ActivationOutcome, MigrationReason, TraceBuffer, TraceConfig, TraceEvent};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Configuration of the native balancer (defaults = the paper's settings).
#[derive(Debug, Clone)]
pub struct NativeConfig {
    /// Balance interval `B` (100 ms in all the paper's experiments).
    pub interval: Duration,
    /// Pull threshold `T_s`.
    pub speed_threshold: f64,
    /// Cores involved in a migration are blocked for this many intervals.
    pub post_migration_block: u32,
    /// Keep migrations inside a NUMA node.
    pub block_numa: bool,
    /// Cores to manage; `None` = every online CPU.
    pub cores: Option<Vec<usize>>,
    /// Delay before first discovery ("a user tunable startup delay for the
    /// balancer to poll the /proc file system").
    pub startup_delay: Duration,
}

impl Default for NativeConfig {
    fn default() -> Self {
        NativeConfig {
            interval: Duration::from_millis(100),
            speed_threshold: 0.9,
            post_migration_block: 2,
            block_numa: true,
            cores: None,
            startup_delay: Duration::from_millis(20),
        }
    }
}

/// Counters published by a balancing run.
#[derive(Debug, Default)]
pub struct NativeStats {
    pub activations: AtomicU64,
    pub migrations: AtomicU64,
    pub threads_seen: AtomicU64,
}

#[derive(Debug, Clone, Copy)]
struct ThreadSample {
    exec: Duration,
    at: Instant,
    core: usize,
    migrations: u64,
}

struct Shared {
    /// tid -> last measurement + current pinned core + migration count.
    threads: Mutex<HashMap<i32, ThreadSample>>,
    /// Published per-core speed, as f64 bits (index = position in cores).
    published: Vec<AtomicU64>,
    /// Millis-since-start of each core's last migration involvement.
    last_migration: Vec<AtomicU64>,
    start: Instant,
    stats: NativeStats,
    /// Event recorder using the simulator's schema, timestamped with
    /// wall-clock nanoseconds since `start`. `None` = tracing off.
    trace: Option<Mutex<TraceBuffer>>,
}

impl Shared {
    /// Wall time since start as a `SimTime` (the trace's clock).
    fn now_sim(&self) -> SimTime {
        SimTime::from_nanos(self.start.elapsed().as_nanos() as u64)
    }

    fn trace_event(&self, cpu: usize, event: TraceEvent) {
        if let Some(buf) = &self.trace {
            let now = self.now_sim();
            buf.lock().record(now, CoreId(cpu), event);
        }
    }

    fn trace_spawn(&self, tid: i32) {
        if let Some(buf) = &self.trace {
            let now = self.now_sim();
            buf.lock()
                .task_spawned(tid as usize, &format!("tid{tid}"), now);
        }
    }

    fn publish(&self, slot: usize, speed: f64) {
        self.published[slot].store(speed.to_bits(), Ordering::Relaxed);
    }

    fn speed_of(&self, slot: usize) -> f64 {
        f64::from_bits(self.published[slot].load(Ordering::Relaxed))
    }

    fn global_speed(&self) -> f64 {
        let n = self.published.len().max(1);
        (0..self.published.len())
            .map(|i| self.speed_of(i))
            .sum::<f64>()
            / n as f64
    }

    fn mark_migration(&self, slot: usize) {
        let ms = self.start.elapsed().as_millis() as u64;
        self.last_migration[slot].store(ms.max(1), Ordering::Relaxed);
    }

    fn in_block(&self, slot: usize, block: Duration) -> bool {
        let last = self.last_migration[slot].load(Ordering::Relaxed);
        if last == 0 {
            return false;
        }
        let now_ms = self.start.elapsed().as_millis() as u64;
        now_ms.saturating_sub(last) < block.as_millis() as u64
    }
}

/// A user-level speed balancer attached to one process.
pub struct NativeSpeedBalancer {
    pid: i32,
    cfg: NativeConfig,
    topo: NativeTopology,
}

/// A tiny xorshift for interval jitter (no determinism requirement here —
/// the jitter exists precisely to decorrelate balancers).
fn jitter_ms(state: &mut u64, max_ms: u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    if max_ms == 0 {
        0
    } else {
        *state % (max_ms + 1)
    }
}

impl NativeSpeedBalancer {
    /// Attaches to a running process.
    pub fn attach(pid: i32, cfg: NativeConfig) -> io::Result<NativeSpeedBalancer> {
        if !process_alive(pid) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such process: {pid}"),
            ));
        }
        let topo = NativeTopology::discover()?;
        Ok(NativeSpeedBalancer { pid, cfg, topo })
    }

    fn managed_cores(&self) -> Vec<usize> {
        match &self.cfg.cores {
            Some(cs) if !cs.is_empty() => cs.clone(),
            _ => self.topo.cpus.clone(),
        }
    }

    /// Discovers (new) threads of the target and pins them round-robin —
    /// initial distribution "in such a way as to distribute the threads in
    /// round-robin fashion across the available cores". Returns how many
    /// threads were newly adopted.
    fn adopt_threads(&self, shared: &Shared, cores: &[usize]) -> usize {
        let Ok(tids) = list_tids(self.pid) else {
            return 0;
        };
        let mut map = shared.threads.lock();
        // Forget exited threads.
        map.retain(|tid, _| tids.contains(tid));
        let mut adopted = 0;
        for (i, tid) in tids.iter().enumerate() {
            if map.contains_key(tid) {
                continue;
            }
            let core = cores[(map.len() + i) % cores.len()];
            if pin_to_cpu(*tid, core).is_err() {
                continue; // raced with thread exit
            }
            let exec = read_thread_cpu_time(self.pid, *tid)
                .map(|t| t.total())
                .unwrap_or_default();
            map.insert(
                *tid,
                ThreadSample {
                    exec,
                    at: Instant::now(),
                    core,
                    migrations: 0,
                },
            );
            adopted += 1;
            shared.stats.threads_seen.fetch_add(1, Ordering::Relaxed);
            shared.trace_spawn(*tid);
        }
        adopted
    }

    /// One activation of the balancer for `slot` (= index into `cores`):
    /// measure, publish, maybe pull one thread.
    fn balance_once(&self, shared: &Shared, cores: &[usize], slot: usize, jitter: Duration) {
        shared.stats.activations.fetch_add(1, Ordering::Relaxed);
        let local_cpu = cores[slot];
        let now = Instant::now();
        let jitter_sim = speedbal_sim::SimDuration::from_nanos(jitter.as_nanos() as u64);
        let activation = |local: f64, global: f64, outcome: ActivationOutcome| {
            shared.trace_event(
                local_cpu,
                TraceEvent::BalancerActivation {
                    policy: "SPEED",
                    local,
                    global,
                    outcome,
                    jitter: jitter_sim,
                },
            );
        };

        // Steps 1-2: measure local thread speeds over the elapsed window.
        let mut local_speeds = Vec::new();
        {
            let mut map = shared.threads.lock();
            for (tid, sample) in map.iter_mut() {
                if sample.core != local_cpu {
                    continue;
                }
                let Ok(times) = read_thread_cpu_time(self.pid, *tid) else {
                    continue; // exited; next adopt pass cleans up
                };
                let wall = now.duration_since(sample.at);
                if wall < self.cfg.interval / 2 {
                    continue; // stale window (e.g. just migrated here)
                }
                let exec_delta = times.total().saturating_sub(sample.exec);
                let speed = exec_delta.as_secs_f64() / wall.as_secs_f64();
                sample.exec = times.total();
                sample.at = now;
                local_speeds.push(speed.min(1.5));
                shared.trace_event(
                    local_cpu,
                    TraceEvent::SpeedSample {
                        task: Some(*tid as usize),
                        speed: speed.min(1.5),
                    },
                );
            }
        }
        let s_local = if local_speeds.is_empty() {
            1.0
        } else {
            local_speeds.iter().sum::<f64>() / local_speeds.len() as f64
        };
        shared.publish(slot, s_local);
        shared.trace_event(
            local_cpu,
            TraceEvent::SpeedSample {
                task: None,
                speed: s_local,
            },
        );

        // Steps 3-4.
        let s_global = shared.global_speed();
        if s_local <= s_global || s_global <= 0.0 {
            activation(s_local, s_global, ActivationOutcome::BelowAverage);
            return;
        }
        let block = self.cfg.interval * self.cfg.post_migration_block;
        if shared.in_block(slot, block) {
            activation(s_local, s_global, ActivationOutcome::Blocked);
            return;
        }
        let mut best: Option<(f64, usize)> = None;
        for (k, &cpu) in cores.iter().enumerate() {
            if k == slot {
                continue;
            }
            let s_k = shared.speed_of(k);
            if s_k / s_global >= self.cfg.speed_threshold {
                continue;
            }
            if self.cfg.block_numa && self.topo.crosses_numa(cpu, local_cpu) {
                continue;
            }
            if shared.in_block(k, block) {
                continue;
            }
            if best.is_none_or(|(bs, _)| s_k < bs) {
                best = Some((s_k, k));
            }
        }
        let Some((best_s_k, victim_slot)) = best else {
            activation(s_local, s_global, ActivationOutcome::NoCandidate);
            return;
        };
        let victim_cpu = cores[victim_slot];

        // Pull the least-migrated thread from the victim core.
        let mut map = shared.threads.lock();
        let Some((&tid, _)) = map
            .iter()
            .filter(|(_, s)| s.core == victim_cpu)
            .min_by_key(|(tid, s)| (s.migrations, **tid))
        else {
            drop(map);
            activation(s_local, s_global, ActivationOutcome::NoCandidate);
            return;
        };
        if pin_to_cpu(tid, local_cpu).is_err() {
            drop(map);
            activation(s_local, s_global, ActivationOutcome::NoCandidate);
            return;
        }
        if let Some(s) = map.get_mut(&tid) {
            s.core = local_cpu;
            s.migrations += 1;
            s.at = now;
            if let Ok(t) = read_thread_cpu_time(self.pid, tid) {
                s.exec = t.total();
            }
        }
        drop(map);
        shared.stats.migrations.fetch_add(1, Ordering::Relaxed);
        shared.mark_migration(slot);
        shared.mark_migration(victim_slot);
        shared.trace_event(
            local_cpu,
            TraceEvent::Migrate {
                task: tid as usize,
                from: CoreId(victim_cpu),
                to: CoreId(local_cpu),
                tier: if self.topo.crosses_numa(victim_cpu, local_cpu) {
                    DomainLevel::Numa
                } else {
                    DomainLevel::Cache
                },
                reason: MigrationReason::SpeedPull {
                    local_speed: s_local,
                    remote_speed: best_s_k,
                    global_speed: s_global,
                },
            },
        );
        activation(s_local, s_global, ActivationOutcome::Pulled);
    }

    /// Runs the balancer (one thread per managed core, as in the paper)
    /// until the target exits or `stop` is set. Returns the final stats.
    pub fn run(&self, stop: &AtomicBool) -> NativeStats {
        self.run_inner(stop, None).0
    }

    /// Like [`run`](Self::run), also recording an event trace in the
    /// simulator's schema — speed samples, balancer activations and
    /// migrations from real `/proc` measurements, timestamped with
    /// wall-clock nanoseconds since attach.
    pub fn run_traced(&self, stop: &AtomicBool, cfg: TraceConfig) -> (NativeStats, TraceBuffer) {
        let (stats, trace) = self.run_inner(stop, Some(cfg));
        (stats, trace.expect("tracing was requested"))
    }

    fn run_inner(
        &self,
        stop: &AtomicBool,
        trace: Option<TraceConfig>,
    ) -> (NativeStats, Option<TraceBuffer>) {
        let cores = self.managed_cores();
        let shared = Shared {
            threads: Mutex::new(HashMap::new()),
            published: (0..cores.len())
                .map(|_| AtomicU64::new(1.0f64.to_bits()))
                .collect(),
            last_migration: (0..cores.len()).map(|_| AtomicU64::new(0)).collect(),
            start: Instant::now(),
            stats: NativeStats::default(),
            trace: trace.map(|cfg| {
                let mut buf = TraceBuffer::with_config(cfg);
                buf.set_n_cores(cores.iter().max().map_or(0, |m| m + 1));
                Mutex::new(buf)
            }),
        };
        std::thread::sleep(self.cfg.startup_delay);
        self.adopt_threads(&shared, &cores);

        std::thread::scope(|scope| {
            for slot in 0..cores.len() {
                let shared = &shared;
                let cores = &cores;
                scope.spawn(move || {
                    // The balancer thread lives on its local core.
                    // SAFETY: trivial syscall.
                    let self_tid = unsafe { libc::gettid() };
                    let _ = pin_to_cpu(self_tid, cores[slot]);
                    let mut rng_state = 0x9E3779B97F4A7C15u64 ^ (slot as u64 + 1) ^ self_tid as u64;
                    while !stop.load(Ordering::Relaxed) && process_alive(self.pid) {
                        let base = self.cfg.interval.as_millis() as u64;
                        let jitter = jitter_ms(&mut rng_state, base);
                        // Sleep in short slices so shutdown is prompt.
                        let deadline = Instant::now() + Duration::from_millis(base + jitter);
                        while Instant::now() < deadline {
                            if stop.load(Ordering::Relaxed) || !process_alive(self.pid) {
                                return;
                            }
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        if slot == 0 {
                            // Dynamic parallelism: adopt newly spawned
                            // threads (a single scanner suffices).
                            self.adopt_threads(shared, cores);
                        }
                        self.balance_once(shared, cores, slot, Duration::from_millis(jitter));
                    }
                });
            }
        });
        let trace = shared.trace.map(|m| m.into_inner());
        (shared.stats, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::process::{Child, Command, Stdio};
    use std::sync::Arc;

    fn spawn_spinner() -> Child {
        Command::new("sh")
            .arg("-c")
            .arg("while :; do :; done")
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn spinner")
    }

    #[test]
    fn jitter_is_bounded() {
        let mut s = 42u64;
        for _ in 0..1000 {
            assert!(jitter_ms(&mut s, 100) <= 100);
        }
        assert_eq!(jitter_ms(&mut s, 0), 0);
    }

    #[test]
    fn attach_rejects_dead_pid() {
        assert!(NativeSpeedBalancer::attach(-1, NativeConfig::default()).is_err());
    }

    // Environment-dependent for the same reasons as the other spinner
    // tests; checks the traced run records the simulator's event schema.
    #[ignore = "wall-clock timing; needs multi-core machine and real /proc"]
    #[test]
    fn traced_run_records_samples() {
        let mut child = spawn_spinner();
        let pid = child.id() as i32;
        let cfg = NativeConfig {
            interval: Duration::from_millis(50),
            startup_delay: Duration::from_millis(10),
            ..NativeConfig::default()
        };
        let bal = NativeSpeedBalancer::attach(pid, cfg).expect("attach");
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(600));
            stop2.store(true, Ordering::Relaxed);
        });
        let (stats, trace) = bal.run_traced(&stop, TraceConfig::default());
        handle.join().unwrap();
        child.kill().ok();
        child.wait().ok();
        assert!(stats.activations.load(Ordering::Relaxed) > 0);
        assert!(trace.n_tasks() >= 1, "spinner adopted into the trace");
        assert!(
            trace.counters().balancer_activations > 0,
            "activations recorded"
        );
        assert!(trace.counters().speed_samples > 0, "speeds recorded");
    }

    // Environment-dependent: needs real sched_setaffinity, a permissive
    // /proc, and hundreds of ms of wall-clock time — flaky on loaded or
    // single-core CI runners. Run explicitly with `cargo test -- --ignored`.
    #[ignore = "wall-clock timing; needs multi-core machine and real /proc"]
    #[test]
    fn balances_a_real_spinner_briefly() {
        let mut child = spawn_spinner();
        let pid = child.id() as i32;
        let cfg = NativeConfig {
            interval: Duration::from_millis(50),
            startup_delay: Duration::from_millis(10),
            ..NativeConfig::default()
        };
        let bal = NativeSpeedBalancer::attach(pid, cfg).expect("attach");
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(600));
            stop2.store(true, Ordering::Relaxed);
        });
        let stats = bal.run(&stop);
        handle.join().unwrap();
        child.kill().ok();
        child.wait().ok();
        assert!(
            stats.activations.load(Ordering::Relaxed) > 0,
            "balancer threads must have activated"
        );
        assert!(
            stats.threads_seen.load(Ordering::Relaxed) >= 1,
            "must have adopted the spinner"
        );
    }

    // Environment-dependent for the same reasons as above.
    #[ignore = "wall-clock timing; needs multi-core machine and real /proc"]
    #[test]
    fn run_returns_when_target_exits() {
        let mut child = spawn_spinner();
        let pid = child.id() as i32;
        let cfg = NativeConfig {
            interval: Duration::from_millis(30),
            startup_delay: Duration::ZERO,
            ..NativeConfig::default()
        };
        let bal = NativeSpeedBalancer::attach(pid, cfg).expect("attach");
        let killer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            // SAFETY: kill on a pid we own.
            unsafe { libc::kill(pid, libc::SIGKILL) };
        });
        let stop = AtomicBool::new(false);
        let start = Instant::now();
        let _ = bal.run(&stop);
        killer.join().unwrap();
        child.wait().ok();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "run must return promptly after target death"
        );
    }
}
