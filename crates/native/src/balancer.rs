//! The distributed balancing loop over real threads.
//!
//! Built entirely on the [`ProcSource`] abstraction, so the same loop runs
//! against the real `/proc` ([`RealProc`]) in production
//! and against the scripted [`MockProc`](crate::MockProc) in tests. The
//! loop is hardened against the failure modes a user-level balancer meets
//! in the wild:
//!
//! - **Churn**: threads that exit mid-scan ([`ProcError::Vanished`]) are
//!   forgotten immediately; new threads are adopted on the next scan.
//! - **Transient read failures** (torn stat lines, `EINTR`): bounded
//!   retry with exponential backoff ([`NativeConfig::max_read_retries`]).
//! - **Repeated failures**: a thread whose reads keep failing is
//!   *quarantined* — dropped from speed accounting for a cooldown — so one
//!   sick tid cannot stall the interval loop.
//! - **Permission failures** (`EPERM` from `sched_setaffinity`): counted
//!   toward quarantine, never retried in-place, never panic.
//! - **Graceful degradation**: a core with no measurable threads publishes
//!   "no data" (NaN) and drops out of the global-speed average instead of
//!   poisoning it with a stale or fabricated value.

use crate::error::ProcError;
use crate::source::{ProcSource, RealProc};
use crate::topo::NativeTopology;
use parking_lot::Mutex;
use speedbal_machine::{CoreId, DomainLevel};
use speedbal_sim::SimTime;
use speedbal_trace::{
    ActivationOutcome, MigrationReason, ProcFaultKind, ProcOp, TraceBuffer, TraceConfig, TraceEvent,
};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of the native balancer (defaults = the paper's settings,
/// plus fault-tolerance knobs that default to mild production values).
#[derive(Debug, Clone)]
pub struct NativeConfig {
    /// Balance interval `B` (100 ms in all the paper's experiments).
    pub interval: Duration,
    /// Pull threshold `T_s`.
    pub speed_threshold: f64,
    /// Cores involved in a migration are blocked for this many intervals.
    pub post_migration_block: u32,
    /// Keep migrations inside a NUMA node.
    pub block_numa: bool,
    /// Cores to manage; `None` = every online CPU.
    pub cores: Option<Vec<usize>>,
    /// Delay before first discovery ("a user tunable startup delay for the
    /// balancer to poll the /proc file system").
    pub startup_delay: Duration,
    /// Bounded retries for *transient* read failures (torn stat lines,
    /// `EINTR`); `Vanished`/`EPERM` are never retried.
    pub max_read_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub retry_backoff: Duration,
    /// Consecutive failed reads before a thread is quarantined.
    pub quarantine_after: u32,
    /// How long a quarantined thread is ignored before re-adoption is
    /// attempted.
    pub quarantine_cooldown: Duration,
}

impl Default for NativeConfig {
    fn default() -> Self {
        NativeConfig {
            interval: Duration::from_millis(100),
            speed_threshold: 0.9,
            post_migration_block: 2,
            block_numa: true,
            cores: None,
            startup_delay: Duration::from_millis(20),
            max_read_retries: 2,
            retry_backoff: Duration::from_millis(2),
            quarantine_after: 3,
            quarantine_cooldown: Duration::from_secs(1),
        }
    }
}

/// Counters published by a balancing run.
#[derive(Debug, Default)]
pub struct NativeStats {
    /// Balancer-thread activations (one per core per interval).
    pub activations: AtomicU64,
    /// Threads pulled between cores.
    pub migrations: AtomicU64,
    /// Distinct threads ever adopted.
    pub threads_seen: AtomicU64,
    /// Failed OS-facing operations (every attempt counts).
    pub proc_faults: AtomicU64,
    /// Transient failures that were retried with backoff.
    pub retries: AtomicU64,
    /// Threads quarantined after repeated read failures.
    pub quarantines: AtomicU64,
}

#[derive(Debug, Clone, Copy)]
struct ThreadSample {
    /// Last observed cumulative CPU time.
    exec: Duration,
    /// Source-clock timestamp of that observation.
    at: Duration,
    core: usize,
    migrations: u64,
    /// Consecutive failed reads (reset on success).
    failures: u32,
}

/// Managed threads plus the quarantine ledger, under one lock.
#[derive(Debug, Default)]
struct ThreadTable {
    /// tid -> last measurement + current pinned core + migration count.
    live: HashMap<i32, ThreadSample>,
    /// tid -> source-clock time at which re-adoption may be attempted.
    quarantined: HashMap<i32, Duration>,
    /// Failure streaks for tids that are not (yet) adopted — e.g. EPERM
    /// during initial placement.
    adopt_failures: HashMap<i32, u32>,
    /// Round-robin placement cursor for newly adopted threads. (A
    /// dedicated cursor, not `live.len() + i`: with an even core count
    /// that sum keeps constant parity while both terms grow, landing
    /// every new thread on the same core.)
    next_slot: usize,
}

struct Shared {
    threads: Mutex<ThreadTable>,
    /// Published per-core speed, as f64 bits (index = position in cores).
    /// NaN = "no data": the core abstains from the global average.
    published: Vec<AtomicU64>,
    /// Millis (source clock) of each core's last migration involvement.
    last_migration: Vec<AtomicU64>,
    stats: NativeStats,
    /// Event recorder using the simulator's schema, timestamped with
    /// source-clock nanoseconds. `None` = tracing off.
    trace: Option<Mutex<TraceBuffer>>,
}

impl Shared {
    fn trace_event(&self, now: Duration, cpu: usize, event: TraceEvent) {
        if let Some(buf) = &self.trace {
            let now = SimTime::from_nanos(now.as_nanos() as u64);
            buf.lock().record(now, CoreId(cpu), event);
        }
    }

    fn trace_spawn(&self, now: Duration, tid: i32) {
        if let Some(buf) = &self.trace {
            let now = SimTime::from_nanos(now.as_nanos() as u64);
            buf.lock()
                .task_spawned(tid as usize, &format!("tid{tid}"), now);
        }
    }

    fn publish(&self, slot: usize, speed: f64) {
        self.published[slot].store(speed.to_bits(), Ordering::Relaxed);
    }

    fn speed_of(&self, slot: usize) -> f64 {
        f64::from_bits(self.published[slot].load(Ordering::Relaxed))
    }

    /// Mean speed over cores that have data. Cores publishing NaN (all
    /// their threads vanished or are quarantined) drop out of the average
    /// instead of poisoning it; `None` when *no* core has data.
    fn global_speed(&self) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for i in 0..self.published.len() {
            let s = self.speed_of(i);
            if s.is_finite() {
                sum += s;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    fn mark_migration(&self, now: Duration, slot: usize) {
        let ms = now.as_millis() as u64;
        self.last_migration[slot].store(ms.max(1), Ordering::Relaxed);
    }

    fn in_block(&self, now: Duration, slot: usize, block: Duration) -> bool {
        let last = self.last_migration[slot].load(Ordering::Relaxed);
        if last == 0 {
            return false;
        }
        let now_ms = now.as_millis() as u64;
        now_ms.saturating_sub(last) < block.as_millis() as u64
    }

    // One parameter per TraceEvent::ProcFault field, deliberately.
    #[allow(clippy::too_many_arguments)]
    fn fault(
        &self,
        now: Duration,
        cpu: usize,
        tid: Option<i32>,
        op: ProcOp,
        err: &ProcError,
        attempt: u32,
        retrying: bool,
    ) {
        self.stats.proc_faults.fetch_add(1, Ordering::Relaxed);
        if retrying {
            self.stats.retries.fetch_add(1, Ordering::Relaxed);
        }
        let kind = match err {
            ProcError::Vanished => ProcFaultKind::Vanished,
            ProcError::PermissionDenied => ProcFaultKind::PermissionDenied,
            ProcError::Malformed(_) => ProcFaultKind::Malformed,
            ProcError::Io(_) => ProcFaultKind::Io,
        };
        self.trace_event(
            now,
            cpu,
            TraceEvent::ProcFault {
                task: tid.map(|t| t as usize),
                op,
                kind,
                attempt,
                retrying,
            },
        );
    }
}

/// A user-level speed balancer attached to one process.
pub struct NativeSpeedBalancer {
    pid: i32,
    cfg: NativeConfig,
    topo: NativeTopology,
    src: Arc<dyn ProcSource>,
}

/// Deregisters a balancer worker from the source's clock on every exit
/// path (normal loop exit, early return, panic).
struct WorkerGuard<'a>(&'a dyn ProcSource);

impl Drop for WorkerGuard<'_> {
    fn drop(&mut self) {
        self.0.worker_stopped();
    }
}

/// A tiny xorshift for interval jitter (no determinism requirement here —
/// the jitter exists precisely to decorrelate balancers).
fn jitter_ms(state: &mut u64, max_ms: u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    if max_ms == 0 {
        0
    } else {
        *state % (max_ms + 1)
    }
}

impl NativeSpeedBalancer {
    /// Attaches to a running process through the real `/proc`, with the
    /// machine discovered from sysfs.
    pub fn attach(pid: i32, cfg: NativeConfig) -> io::Result<NativeSpeedBalancer> {
        let topo = NativeTopology::discover()?;
        NativeSpeedBalancer::attach_with_source(pid, cfg, Arc::new(RealProc::new()), topo)
            .map_err(io::Error::from)
    }

    /// Attaches through an arbitrary [`ProcSource`] — the seam that makes
    /// the whole balancing loop testable against
    /// [`MockProc`](crate::MockProc) with scripted fault injection.
    pub fn attach_with_source(
        pid: i32,
        cfg: NativeConfig,
        src: Arc<dyn ProcSource>,
        topo: NativeTopology,
    ) -> Result<NativeSpeedBalancer, ProcError> {
        if !src.process_alive(pid) {
            return Err(ProcError::Vanished);
        }
        Ok(NativeSpeedBalancer {
            pid,
            cfg,
            topo,
            src,
        })
    }

    fn managed_cores(&self) -> Vec<usize> {
        match &self.cfg.cores {
            Some(cs) if !cs.is_empty() => cs.clone(),
            _ => self.topo.cpus.clone(),
        }
    }

    /// Reads one thread's CPU time with bounded retry-with-backoff on
    /// transient failures. Records every failed attempt as a fault event.
    fn read_times_retrying(
        &self,
        shared: &Shared,
        cpu: usize,
        tid: i32,
    ) -> Result<crate::proc::ThreadTimes, ProcError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.src.thread_cpu_time(self.pid, tid) {
                Ok(t) => return Ok(t),
                Err(e) => {
                    let retrying = e.is_transient() && attempt <= self.cfg.max_read_retries;
                    shared.fault(
                        self.src.now(),
                        cpu,
                        Some(tid),
                        ProcOp::ReadCpuTime,
                        &e,
                        attempt,
                        retrying,
                    );
                    if !retrying {
                        return Err(e);
                    }
                    self.src
                        .sleep(self.cfg.retry_backoff * (1 << (attempt - 1).min(8)));
                }
            }
        }
    }

    /// Lists the target's threads with bounded retry on transient errors.
    fn list_tids_retrying(&self, shared: &Shared, cpu: usize) -> Result<Vec<i32>, ProcError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.src.list_tids(self.pid) {
                Ok(tids) => return Ok(tids),
                Err(e) => {
                    let retrying = e.is_transient() && attempt <= self.cfg.max_read_retries;
                    shared.fault(
                        self.src.now(),
                        cpu,
                        None,
                        ProcOp::ListThreads,
                        &e,
                        attempt,
                        retrying,
                    );
                    if !retrying {
                        return Err(e);
                    }
                    self.src
                        .sleep(self.cfg.retry_backoff * (1 << (attempt - 1).min(8)));
                }
            }
        }
    }

    /// Moves a live thread into quarantine (dropping it from accounting)
    /// once its failure streak crosses the threshold. Caller holds the
    /// table lock.
    fn maybe_quarantine(
        &self,
        shared: &Shared,
        table: &mut ThreadTable,
        now: Duration,
        cpu: usize,
        tid: i32,
        failures: u32,
    ) -> bool {
        if failures < self.cfg.quarantine_after {
            return false;
        }
        table.live.remove(&tid);
        table.adopt_failures.remove(&tid);
        table
            .quarantined
            .insert(tid, now + self.cfg.quarantine_cooldown);
        shared.stats.quarantines.fetch_add(1, Ordering::Relaxed);
        shared.trace_event(
            now,
            cpu,
            TraceEvent::Quarantined {
                task: tid as usize,
                failures,
            },
        );
        true
    }

    /// Discovers (new) threads of the target and pins them round-robin —
    /// initial distribution "in such a way as to distribute the threads in
    /// round-robin fashion across the available cores". Returns how many
    /// threads were newly adopted. Tolerates churn: vanished tids are
    /// pruned, quarantined tids are skipped until their cooldown expires,
    /// and EPERM placements count toward quarantine instead of looping.
    fn adopt_threads(&self, shared: &Shared, cores: &[usize]) -> usize {
        let scan_cpu = cores[0];
        let Ok(tids) = self.list_tids_retrying(shared, scan_cpu) else {
            return 0;
        };
        let now = self.src.now();
        // Prune and pick placements under the lock; the pinning and the
        // initial reads happen outside it, because the retry helpers sleep
        // and sleeping under the table lock would stall the other
        // balancer loops (fatally so on a lockstep virtual clock).
        let candidates: Vec<(i32, usize)> = {
            let mut table = shared.threads.lock();
            // Forget exited threads and expired or vanished quarantine
            // entries.
            table.live.retain(|tid, _| tids.contains(tid));
            table
                .quarantined
                .retain(|tid, until| tids.contains(tid) && now < *until);
            table.adopt_failures.retain(|tid, _| tids.contains(tid));
            let mut picked = Vec::new();
            for tid in tids.iter() {
                if table.live.contains_key(tid) || table.quarantined.contains_key(tid) {
                    continue;
                }
                let core = cores[table.next_slot % cores.len()];
                table.next_slot += 1;
                picked.push((*tid, core));
            }
            picked
        };
        let mut adopted = 0;
        for (tid, core) in candidates {
            match self.src.pin_to_cpu(tid, core) {
                Ok(()) => {}
                Err(e @ ProcError::Vanished) => {
                    // Raced with thread exit: not a failure streak.
                    shared.fault(now, scan_cpu, Some(tid), ProcOp::SetAffinity, &e, 1, false);
                    continue;
                }
                Err(e) => {
                    shared.fault(now, scan_cpu, Some(tid), ProcOp::SetAffinity, &e, 1, false);
                    let mut table = shared.threads.lock();
                    let failures = table.adopt_failures.entry(tid).or_insert(0);
                    *failures += 1;
                    let failures = *failures;
                    self.maybe_quarantine(shared, &mut table, now, scan_cpu, tid, failures);
                    continue;
                }
            }
            // Transient read failures here are retried by the helper; a
            // final failure just starts the sample at zero (the first
            // measurement window will correct it).
            let exec = self
                .read_times_retrying(shared, scan_cpu, tid)
                .map(|t| t.total())
                .unwrap_or_default();
            let at = self.src.now();
            let mut table = shared.threads.lock();
            if table.live.contains_key(&tid) || table.quarantined.contains_key(&tid) {
                continue;
            }
            table.live.insert(
                tid,
                ThreadSample {
                    exec,
                    at,
                    core,
                    migrations: 0,
                    failures: 0,
                },
            );
            table.adopt_failures.remove(&tid);
            adopted += 1;
            shared.stats.threads_seen.fetch_add(1, Ordering::Relaxed);
            shared.trace_spawn(at, tid);
        }
        adopted
    }

    /// One activation of the balancer for `slot` (= index into `cores`):
    /// measure, publish, maybe pull one thread.
    fn balance_once(&self, shared: &Shared, cores: &[usize], slot: usize, jitter: Duration) {
        shared.stats.activations.fetch_add(1, Ordering::Relaxed);
        let local_cpu = cores[slot];
        let jitter_sim = speedbal_sim::SimDuration::from_nanos(jitter.as_nanos() as u64);
        let activation = |local: f64, global: f64, outcome: ActivationOutcome| {
            shared.trace_event(
                self.src.now(),
                local_cpu,
                TraceEvent::BalancerActivation {
                    policy: "SPEED",
                    local,
                    global,
                    outcome,
                    jitter: jitter_sim,
                },
            );
        };

        // Steps 1-2: measure local thread speeds over the elapsed window.
        // Reads happen *outside* the table lock — the retry helper sleeps
        // on transient failures, and sleeping under the lock would stall
        // the other balancer loops (fatally so on a lockstep virtual
        // clock). Churn between the snapshot and the apply phase is fine:
        // a tid that disappeared from the table in between is skipped.
        let tids: Vec<i32> = shared
            .threads
            .lock()
            .live
            .iter()
            .filter(|(_, s)| s.core == local_cpu)
            .map(|(tid, _)| *tid)
            .collect();
        let mut vanished: Vec<i32> = Vec::new();
        let mut failed: Vec<i32> = Vec::new();
        let mut measured: Vec<(i32, Duration)> = Vec::new();
        for tid in tids {
            match self.read_times_retrying(shared, local_cpu, tid) {
                Ok(t) => measured.push((tid, t.total())),
                Err(ProcError::Vanished) => vanished.push(tid),
                Err(_) => failed.push(tid),
            }
        }
        let now = self.src.now();
        let mut local_speeds = Vec::new();
        {
            let mut table = shared.threads.lock();
            // Churn: threads that exited mid-scan are simply forgotten —
            // the next adopt pass re-lists the survivors.
            for tid in vanished {
                table.live.remove(&tid);
            }
            for tid in failed {
                if let Some(s) = table.live.get_mut(&tid) {
                    s.failures += 1;
                    let failures = s.failures;
                    self.maybe_quarantine(shared, &mut table, now, local_cpu, tid, failures);
                }
            }
            for (tid, total) in measured {
                let Some(sample) = table.live.get_mut(&tid) else {
                    continue;
                };
                if sample.core != local_cpu {
                    continue; // pulled away while we were reading
                }
                sample.failures = 0;
                let wall = now.saturating_sub(sample.at);
                if wall < self.cfg.interval / 2 {
                    continue; // stale window (e.g. just migrated here)
                }
                let exec_delta = total.saturating_sub(sample.exec);
                let speed = exec_delta.as_secs_f64() / wall.as_secs_f64();
                sample.exec = total;
                sample.at = now;
                local_speeds.push(speed.min(1.5));
                shared.trace_event(
                    now,
                    local_cpu,
                    TraceEvent::SpeedSample {
                        task: Some(tid as usize),
                        speed: speed.min(1.5),
                    },
                );
            }
        }
        // Graceful degradation: no measurable threads -> publish "no
        // data"; this core abstains from the global average rather than
        // reporting a fabricated speed.
        let s_local = if local_speeds.is_empty() {
            f64::NAN
        } else {
            local_speeds.iter().sum::<f64>() / local_speeds.len() as f64
        };
        shared.publish(slot, s_local);
        if s_local.is_finite() {
            shared.trace_event(
                now,
                local_cpu,
                TraceEvent::SpeedSample {
                    task: None,
                    speed: s_local,
                },
            );
        }

        // Steps 3-4.
        let Some(s_global) = shared.global_speed() else {
            activation(s_local, f64::NAN, ActivationOutcome::BelowAverage);
            return;
        };
        if !s_local.is_finite() || s_local <= s_global || s_global <= 0.0 {
            activation(s_local, s_global, ActivationOutcome::BelowAverage);
            return;
        }
        let block = self.cfg.interval * self.cfg.post_migration_block;
        if shared.in_block(now, slot, block) {
            activation(s_local, s_global, ActivationOutcome::Blocked);
            return;
        }
        let mut best: Option<(f64, usize)> = None;
        for (k, &cpu) in cores.iter().enumerate() {
            if k == slot {
                continue;
            }
            let s_k = shared.speed_of(k);
            if !s_k.is_finite() {
                continue; // no data: cannot judge it a victim
            }
            if s_k / s_global >= self.cfg.speed_threshold {
                continue;
            }
            if self.cfg.block_numa && self.topo.crosses_numa(cpu, local_cpu) {
                continue;
            }
            if shared.in_block(now, k, block) {
                continue;
            }
            if best.is_none_or(|(bs, _)| s_k < bs) {
                best = Some((s_k, k));
            }
        }
        let Some((best_s_k, victim_slot)) = best else {
            activation(s_local, s_global, ActivationOutcome::NoCandidate);
            return;
        };
        let victim_cpu = cores[victim_slot];

        // Pull the least-migrated thread from the victim core.
        let mut table = shared.threads.lock();
        let Some((&tid, _)) = table
            .live
            .iter()
            .filter(|(_, s)| s.core == victim_cpu)
            .min_by_key(|(tid, s)| (s.migrations, **tid))
        else {
            drop(table);
            activation(s_local, s_global, ActivationOutcome::NoCandidate);
            return;
        };
        match self.src.pin_to_cpu(tid, local_cpu) {
            Ok(()) => {}
            Err(e) => {
                shared.fault(now, local_cpu, Some(tid), ProcOp::SetAffinity, &e, 1, false);
                match e {
                    ProcError::Vanished => {
                        table.live.remove(&tid);
                    }
                    _ => {
                        if let Some(s) = table.live.get_mut(&tid) {
                            s.failures += 1;
                            let failures = s.failures;
                            self.maybe_quarantine(
                                shared, &mut table, now, local_cpu, tid, failures,
                            );
                        }
                    }
                }
                drop(table);
                activation(s_local, s_global, ActivationOutcome::NoCandidate);
                return;
            }
        }
        if let Some(s) = table.live.get_mut(&tid) {
            s.core = local_cpu;
            s.migrations += 1;
            s.at = now;
            if let Ok(t) = self.src.thread_cpu_time(self.pid, tid) {
                s.exec = t.total();
            }
        }
        drop(table);
        shared.stats.migrations.fetch_add(1, Ordering::Relaxed);
        shared.mark_migration(now, slot);
        shared.mark_migration(now, victim_slot);
        shared.trace_event(
            now,
            local_cpu,
            TraceEvent::Migrate {
                task: tid as usize,
                from: CoreId(victim_cpu),
                to: CoreId(local_cpu),
                tier: if self.topo.crosses_numa(victim_cpu, local_cpu) {
                    DomainLevel::Numa
                } else {
                    DomainLevel::Cache
                },
                reason: MigrationReason::SpeedPull {
                    local_speed: s_local,
                    remote_speed: best_s_k,
                    global_speed: s_global,
                },
            },
        );
        activation(s_local, s_global, ActivationOutcome::Pulled);
    }

    /// Runs the balancer (one thread per managed core, as in the paper)
    /// until the target exits or `stop` is set. Returns the final stats.
    pub fn run(&self, stop: &AtomicBool) -> NativeStats {
        self.run_inner(stop, None).0
    }

    /// Like [`run`](Self::run), also recording an event trace in the
    /// simulator's schema — speed samples, balancer activations,
    /// migrations, faults and quarantines from the source's measurements,
    /// timestamped with source-clock nanoseconds.
    pub fn run_traced(&self, stop: &AtomicBool, cfg: TraceConfig) -> (NativeStats, TraceBuffer) {
        let (stats, trace) = self.run_inner(stop, Some(cfg));
        (stats, trace.expect("tracing was requested"))
    }

    fn run_inner(
        &self,
        stop: &AtomicBool,
        trace: Option<TraceConfig>,
    ) -> (NativeStats, Option<TraceBuffer>) {
        let cores = self.managed_cores();
        let shared = Shared {
            threads: Mutex::new(ThreadTable::default()),
            published: (0..cores.len())
                .map(|_| AtomicU64::new(f64::NAN.to_bits()))
                .collect(),
            last_migration: (0..cores.len()).map(|_| AtomicU64::new(0)).collect(),
            stats: NativeStats::default(),
            trace: trace.map(|cfg| {
                let mut buf = TraceBuffer::with_config(cfg);
                buf.set_n_cores(cores.iter().max().map_or(0, |m| m + 1));
                Mutex::new(buf)
            }),
        };
        self.src.sleep(self.cfg.startup_delay);
        self.adopt_threads(&shared, &cores);

        // Register every worker with the source's clock *before* any of
        // them starts: on a lockstep virtual clock this guarantees no
        // balancer loop can advance time until all of them are running
        // (see [`ProcSource::worker_started`]).
        for _ in 0..cores.len() {
            self.src.worker_started();
        }
        std::thread::scope(|scope| {
            for slot in 0..cores.len() {
                let shared = &shared;
                let cores = &cores;
                scope.spawn(move || {
                    let _worker = WorkerGuard(self.src.as_ref());
                    // The balancer thread lives on its local core. Real
                    // sources pin the loop thread itself; best-effort (a
                    // mock, or EPERM, just leaves it floating).
                    // SAFETY: trivial syscall.
                    let self_tid = unsafe { libc::gettid() };
                    let _ = self.src.pin_to_cpu(self_tid, cores[slot]);
                    let mut rng_state = 0x9E3779B97F4A7C15u64 ^ (slot as u64 + 1) ^ self_tid as u64;
                    let slice = Duration::from_millis(5);
                    while !stop.load(Ordering::Relaxed) && self.src.process_alive(self.pid) {
                        let base = self.cfg.interval.as_millis() as u64;
                        let jitter = jitter_ms(&mut rng_state, base);
                        // Sleep in short slices so shutdown is prompt.
                        let deadline = self.src.now() + Duration::from_millis(base + jitter);
                        loop {
                            let now = self.src.now();
                            if now >= deadline {
                                break;
                            }
                            if stop.load(Ordering::Relaxed) || !self.src.process_alive(self.pid) {
                                return;
                            }
                            self.src.sleep(slice.min(deadline - now));
                        }
                        if slot == 0 {
                            // Dynamic parallelism: adopt newly spawned
                            // threads (a single scanner suffices).
                            self.adopt_threads(shared, cores);
                        }
                        self.balance_once(shared, cores, slot, Duration::from_millis(jitter));
                    }
                });
            }
        });
        let trace = shared.trace.map(|m| m.into_inner());
        (shared.stats, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::{Fault, GlobalFault, MockProc};
    use std::sync::Arc;

    #[test]
    fn jitter_is_bounded() {
        let mut s = 42u64;
        for _ in 0..1000 {
            assert!(jitter_ms(&mut s, 100) <= 100);
        }
        assert_eq!(jitter_ms(&mut s, 0), 0);
    }

    #[test]
    fn attach_rejects_dead_pid() {
        assert!(NativeSpeedBalancer::attach(-1, NativeConfig::default()).is_err());
        let mock = Arc::new(MockProc::builder(7, 2).thread(1).build());
        let topo = mock.topology();
        assert!(matches!(
            NativeSpeedBalancer::attach_with_source(99, NativeConfig::default(), mock, topo),
            Err(ProcError::Vanished)
        ));
    }

    /// Attaches a balancer to a mock and runs it to completion (the mock
    /// process must be scripted to exit, which ends the run in virtual
    /// time — no wall-clock dependence).
    fn run_to_exit(mock: Arc<MockProc>, cfg: NativeConfig) -> NativeStats {
        let topo = mock.topology();
        let bal = NativeSpeedBalancer::attach_with_source(mock.pid(), cfg, mock.clone(), topo)
            .expect("attach");
        let stop = AtomicBool::new(false);
        bal.run(&stop)
    }

    fn quick_cfg() -> NativeConfig {
        NativeConfig {
            interval: Duration::from_millis(50),
            startup_delay: Duration::from_millis(10),
            ..NativeConfig::default()
        }
    }

    // Deterministic replacement for the old `#[ignore]`d wall-clock test
    // `balances_a_real_spinner_briefly`: 3 always-runnable threads on 2
    // cores is the paper's N mod M != 0 case — the balancer must adopt all
    // three and keep pulling from the slow core.
    #[test]
    fn balances_a_spinner_briefly() {
        let mock = Arc::new(
            MockProc::builder(100, 2)
                .thread(101)
                .thread(102)
                .thread(103)
                .process_exits_at(Duration::from_secs(3))
                .build(),
        );
        let stats = run_to_exit(mock.clone(), quick_cfg());
        assert!(
            stats.activations.load(Ordering::Relaxed) > 0,
            "balancer threads must have activated"
        );
        assert_eq!(
            stats.threads_seen.load(Ordering::Relaxed),
            3,
            "must have adopted all three spinner threads"
        );
        assert!(
            stats.migrations.load(Ordering::Relaxed) > 0,
            "3 threads on 2 cores must trigger speed pulls"
        );
        assert_eq!(stats.quarantines.load(Ordering::Relaxed), 0);
    }

    // Deterministic replacement for the old `#[ignore]`d
    // `run_returns_when_target_exits`: the run loop must notice the
    // scripted process death and return (in virtual time).
    #[test]
    fn run_returns_when_target_exits() {
        let mock = Arc::new(
            MockProc::builder(200, 2)
                .thread(201)
                .process_exits_at(Duration::from_millis(400))
                .build(),
        );
        let cfg = NativeConfig {
            interval: Duration::from_millis(30),
            startup_delay: Duration::ZERO,
            ..NativeConfig::default()
        };
        let _ = run_to_exit(mock.clone(), cfg);
        // run() returned — and only because the virtual clock crossed the
        // scripted death, never because of wall-clock luck.
        assert!(mock.virtual_now() >= Duration::from_millis(400));
        assert!(!mock.process_alive(200));
    }

    // Deterministic replacement for the old `#[ignore]`d
    // `traced_run_records_samples`.
    #[test]
    fn traced_run_records_samples() {
        let mock = Arc::new(
            MockProc::builder(300, 2)
                .thread(301)
                .thread(302)
                .thread(303)
                .process_exits_at(Duration::from_secs(2))
                .build(),
        );
        let topo = mock.topology();
        let bal =
            NativeSpeedBalancer::attach_with_source(300, quick_cfg(), mock, topo).expect("attach");
        let stop = AtomicBool::new(false);
        let (stats, trace) = bal.run_traced(&stop, TraceConfig::default());
        assert!(stats.activations.load(Ordering::Relaxed) > 0);
        assert!(trace.n_tasks() >= 1, "spinner adopted into the trace");
        assert!(
            trace.counters().balancer_activations > 0,
            "activations recorded"
        );
        assert!(trace.counters().speed_samples > 0, "speeds recorded");
    }

    #[test]
    fn transient_read_failures_are_retried_not_fatal() {
        let mock = Arc::new(
            MockProc::builder(400, 2)
                .thread(401)
                .thread(402)
                .process_exits_at(Duration::from_secs(1))
                .build(),
        );
        mock.inject(401, Fault::IoReads(2));
        mock.inject(402, Fault::MalformedReads(1));
        let stats = run_to_exit(mock.clone(), quick_cfg());
        assert_eq!(stats.threads_seen.load(Ordering::Relaxed), 2);
        assert!(stats.retries.load(Ordering::Relaxed) >= 1, "faults retried");
        assert_eq!(
            stats.quarantines.load(Ordering::Relaxed),
            0,
            "bounded retry must absorb short transients"
        );
    }

    #[test]
    fn persistent_read_failures_quarantine_the_thread() {
        let mock = Arc::new(
            MockProc::builder(500, 2)
                .thread(501)
                .thread(502)
                .process_exits_at(Duration::from_secs(3))
                .build(),
        );
        // 501's stat file is permanently torn: every read fails even after
        // retries, so its failure streak must cross quarantine_after.
        mock.inject(501, Fault::MalformedReads(u32::MAX));
        let stats = run_to_exit(mock.clone(), quick_cfg());
        assert!(
            stats.quarantines.load(Ordering::Relaxed) >= 1,
            "sick thread must be quarantined"
        );
        // The healthy thread keeps the run alive and measurable.
        assert!(stats.activations.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn eperm_affinity_degrades_gracefully() {
        let mock = Arc::new(
            MockProc::builder(600, 2)
                .thread(601)
                .thread(602)
                .thread(603)
                .process_exits_at(Duration::from_secs(2))
                .build(),
        );
        // Initial placement EPERMs a few times, then the balancer's own
        // loop threads also race the budget; it must neither panic nor
        // spin on the failing call.
        mock.inject_global(GlobalFault::EpermAllPins(4));
        let stats = run_to_exit(mock.clone(), quick_cfg());
        assert!(stats.proc_faults.load(Ordering::Relaxed) >= 1);
        assert!(
            stats.threads_seen.load(Ordering::Relaxed) >= 1,
            "later adopt passes succeed once EPERM script drains"
        );
    }

    #[test]
    fn fully_eperm_target_never_panics() {
        let mock = Arc::new(
            MockProc::builder(700, 2)
                .thread(701)
                .thread(702)
                .process_exits_at(Duration::from_secs(2))
                .build(),
        );
        mock.inject(701, Fault::EpermPinsForever);
        mock.inject(702, Fault::EpermPinsForever);
        let stats = run_to_exit(mock.clone(), quick_cfg());
        // Unpinnable threads end up quarantined; the run completes.
        assert!(stats.quarantines.load(Ordering::Relaxed) >= 1);
        assert_eq!(stats.threads_seen.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn vanished_core_drops_out_of_global_average() {
        // Two threads on a 2-core machine; both exit mid-run. Their cores
        // must publish NaN and abstain rather than poisoning the average —
        // observable as: no migrations after the exits, no panics, and the
        // run still terminates on process death.
        let mock = Arc::new(
            MockProc::builder(800, 2)
                .thread_spanning(801, Duration::ZERO, Some(Duration::from_millis(400)))
                .thread_spanning(802, Duration::ZERO, Some(Duration::from_millis(400)))
                .process_exits_at(Duration::from_secs(2))
                .build(),
        );
        let stats = run_to_exit(mock.clone(), quick_cfg());
        assert_eq!(stats.threads_seen.load(Ordering::Relaxed), 2);
        assert!(mock.virtual_now() >= Duration::from_secs(2));
        // No thread exists after 400ms, so no pull can ever fire off NaN
        // data; the loop must still have kept activating until death.
        assert!(stats.activations.load(Ordering::Relaxed) > 0);
    }
}
