//! A deterministic in-memory `/proc`: the fault-injection backend.
//!
//! [`MockProc`] implements [`ProcSource`] over a scripted model of one
//! process: threads spawn and exit at virtual timestamps, CPU time accrues
//! as if each core were shared fairly among the threads pinned to it, and
//! every operation can be made to fail on schedule — `ESRCH`-style
//! vanishing mid-scan, `EPERM` on `sched_setaffinity`, malformed `stat`
//! content, transient I/O errors. The clock is *virtual*: [`ProcSource::sleep`]
//! advances it instead of blocking, so a full multi-second balancing run
//! with churn completes in microseconds of wall time and never depends on
//! machine load, core count, or procfs permissions. When balancer worker
//! threads are registered ([`ProcSource::worker_started`]), sleepers
//! advance the clock in *lockstep* — the clock only moves to the
//! earliest pending wake deadline once every registered worker is
//! asleep — so concurrent balancer loops interleave deterministically
//! enough to assert on balancing decisions.
//!
//! The CPU model is deliberately the paper's own: a thread's *speed* is
//! the fraction of a core it gets, so `k` threads pinned to one core each
//! accrue `1/k` seconds of CPU per virtual second. That is exactly the
//! imbalance signal the speed balancer equalizes, which lets the
//! previously machine-dependent behavioral tests assert real balancing
//! decisions deterministically.

use crate::error::ProcError;
use crate::proc::ThreadTimes;
use crate::source::ProcSource;
use crate::topo::NativeTopology;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io;
use std::sync::{Condvar, Mutex as StdMutex};
use std::time::Duration;

/// A scripted per-thread fault (armed via [`MockProc::inject`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The next `n` CPU-time reads of this thread fail with
    /// [`ProcError::Vanished`] while the tid stays listed — the classic
    /// "exited between `readdir` and `open`" race.
    VanishReads(u32),
    /// The next `n` CPU-time reads return malformed-stat errors
    /// (truncated/torn line).
    MalformedReads(u32),
    /// The next `n` CPU-time reads fail with a transient I/O error.
    IoReads(u32),
    /// The next `n` `sched_setaffinity` calls on this thread fail with
    /// [`ProcError::PermissionDenied`].
    EpermPins(u32),
    /// Every `sched_setaffinity` call on this thread fails with
    /// [`ProcError::PermissionDenied`], forever (a target thread owned by
    /// another user).
    EpermPinsForever,
}

/// A scripted process-wide fault (armed via [`MockProc::inject_global`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalFault {
    /// The next `n` [`ProcSource::list_tids`] calls fail transiently.
    ListIoErrors(u32),
    /// The next `n` `sched_setaffinity` calls on *any* thread fail with
    /// [`ProcError::PermissionDenied`].
    EpermAllPins(u32),
}

#[derive(Debug, Clone)]
struct MockThread {
    spawn_at: Duration,
    exit_at: Option<Duration>,
    exec: Duration,
    cpu: usize,
    vanish_reads: u32,
    malformed_reads: u32,
    io_reads: u32,
    eperm_pins: u32,
    eperm_forever: bool,
}

impl MockThread {
    fn alive_at(&self, now: Duration) -> bool {
        self.spawn_at <= now && self.exit_at.is_none_or(|e| now < e)
    }
}

#[derive(Debug)]
struct MockState {
    pid: i32,
    n_cpus: usize,
    process_exit_at: Option<Duration>,
    threads: BTreeMap<i32, MockThread>,
    list_io_errors: u32,
    eperm_all_pins: u32,
    now: Duration,
}

impl MockState {
    fn process_alive_at(&self, now: Duration) -> bool {
        self.process_exit_at.is_none_or(|e| now < e)
    }

    /// Advances the virtual clock to `now + d`, accruing CPU time segment
    /// by segment between spawn/exit boundaries. Each core is shared
    /// fairly: a thread pinned alone runs at speed 1, two sharing a core
    /// run at 1/2, and so on.
    fn advance(&mut self, d: Duration) {
        let target = self.now + d;
        while self.now < target {
            let mut next = target;
            for t in self.threads.values() {
                if t.spawn_at > self.now && t.spawn_at < next {
                    next = t.spawn_at;
                }
                if let Some(e) = t.exit_at {
                    if e > self.now && e < next {
                        next = e;
                    }
                }
            }
            if let Some(e) = self.process_exit_at {
                if e > self.now && e < next {
                    next = e;
                }
            }
            let seg = next - self.now;
            if self.process_alive_at(self.now) {
                let mut per_cpu = vec![0u32; self.n_cpus];
                let at = self.now;
                for t in self.threads.values() {
                    if t.alive_at(at) {
                        per_cpu[t.cpu.min(self.n_cpus - 1)] += 1;
                    }
                }
                for t in self.threads.values_mut() {
                    if t.alive_at(at) {
                        let share = per_cpu[t.cpu.min(self.n_cpus - 1)].max(1);
                        t.exec += seg / share;
                    }
                }
            }
            self.now = next;
        }
    }
}

/// Deterministic in-memory [`ProcSource`] modelling one multi-threaded
/// process with scripted churn and fault injection. Built with
/// [`MockProc::builder`]; safe to share (`Arc`) with a running balancer
/// and mutate concurrently through the `inject`/`spawn_thread`/
/// `exit_thread` methods.
pub struct MockProc {
    state: Mutex<MockState>,
    coord: SleepCoord,
}

/// Lockstep virtual-time coordinator (see [`ProcSource::worker_started`]).
///
/// With zero registered workers, `sleep` advances the clock directly
/// (single-threaded setup and plain unit tests). With workers registered,
/// `sleep` becomes a rendezvous: each sleeper posts its wake deadline, and
/// only the holder of the *earliest* deadline advances the clock — and
/// only once every registered worker is asleep. A worker that is busy
/// computing therefore freezes virtual time for everyone, which makes the
/// interleaving of concurrent balancer loops independent of real thread
/// scheduling: no loop can burn through seconds of virtual time while a
/// sibling is descheduled.
#[derive(Default)]
struct SleepCoord {
    inner: StdMutex<CoordState>,
    cv: Condvar,
}

#[derive(Default)]
struct CoordState {
    /// Registered balancer workers (via `worker_started`/`worker_stopped`).
    workers: usize,
    /// Monotone token source; breaks deadline ties deterministically.
    next_token: u64,
    /// Currently sleeping threads: (token, virtual wake deadline).
    sleepers: Vec<(u64, Duration)>,
}

/// Builder for [`MockProc`] scenarios.
#[derive(Debug)]
pub struct MockProcBuilder {
    state: MockState,
}

impl MockProc {
    /// Starts describing a process `pid` on a machine with `n_cpus` CPUs.
    pub fn builder(pid: i32, n_cpus: usize) -> MockProcBuilder {
        MockProcBuilder {
            state: MockState {
                pid,
                n_cpus: n_cpus.max(1),
                process_exit_at: None,
                threads: BTreeMap::new(),
                list_io_errors: 0,
                eperm_all_pins: 0,
                now: Duration::ZERO,
            },
        }
    }

    /// The matching synthetic topology (uniform, single NUMA node) for
    /// attaching a balancer to this mock.
    pub fn topology(&self) -> NativeTopology {
        NativeTopology::synthetic(self.state.lock().n_cpus)
    }

    /// The pid this mock models.
    pub fn pid(&self) -> i32 {
        self.state.lock().pid
    }

    /// Arms a per-thread fault script.
    pub fn inject(&self, tid: i32, fault: Fault) {
        let mut s = self.state.lock();
        let Some(t) = s.threads.get_mut(&tid) else {
            return;
        };
        match fault {
            Fault::VanishReads(n) => t.vanish_reads += n,
            Fault::MalformedReads(n) => t.malformed_reads += n,
            Fault::IoReads(n) => t.io_reads += n,
            Fault::EpermPins(n) => t.eperm_pins += n,
            Fault::EpermPinsForever => t.eperm_forever = true,
        }
    }

    /// Arms a process-wide fault script.
    pub fn inject_global(&self, fault: GlobalFault) {
        let mut s = self.state.lock();
        match fault {
            GlobalFault::ListIoErrors(n) => s.list_io_errors += n,
            GlobalFault::EpermAllPins(n) => s.eperm_all_pins += n,
        }
    }

    /// Spawns a new thread *now* (churn between balance intervals). It
    /// starts on CPU 0, like a freshly forked thread before placement.
    pub fn spawn_thread(&self, tid: i32) {
        let mut s = self.state.lock();
        let now = s.now;
        s.threads.entry(tid).or_insert(MockThread {
            spawn_at: now,
            exit_at: None,
            exec: Duration::ZERO,
            cpu: 0,
            vanish_reads: 0,
            malformed_reads: 0,
            io_reads: 0,
            eperm_pins: 0,
            eperm_forever: false,
        });
    }

    /// Makes a thread exit *now*. Its procfs entries disappear from the
    /// next call onward.
    pub fn exit_thread(&self, tid: i32) {
        let mut s = self.state.lock();
        let now = s.now;
        if let Some(t) = s.threads.get_mut(&tid) {
            if t.exit_at.is_none_or(|e| e > now) {
                t.exit_at = Some(now);
            }
        }
    }

    /// Cumulative CPU time a thread has accrued (tombstones included), for
    /// asserting monotone speed accounting in tests.
    pub fn thread_exec(&self, tid: i32) -> Option<Duration> {
        self.state.lock().threads.get(&tid).map(|t| t.exec)
    }

    /// The CPU a thread is currently pinned to.
    pub fn thread_cpu(&self, tid: i32) -> Option<usize> {
        self.state.lock().threads.get(&tid).map(|t| t.cpu)
    }

    /// Current virtual time.
    pub fn virtual_now(&self) -> Duration {
        self.state.lock().now
    }
}

impl MockProcBuilder {
    /// Adds a thread alive from time zero that never exits on its own.
    pub fn thread(self, tid: i32) -> Self {
        self.thread_spanning(tid, Duration::ZERO, None)
    }

    /// Adds a thread with a scripted lifetime.
    pub fn thread_spanning(
        mut self,
        tid: i32,
        spawn_at: Duration,
        exit_at: Option<Duration>,
    ) -> Self {
        self.state.threads.insert(
            tid,
            MockThread {
                spawn_at,
                exit_at,
                exec: Duration::ZERO,
                cpu: 0,
                vanish_reads: 0,
                malformed_reads: 0,
                io_reads: 0,
                eperm_pins: 0,
                eperm_forever: false,
            },
        );
        self
    }

    /// Scripts the whole process to exit at a virtual timestamp.
    pub fn process_exits_at(mut self, at: Duration) -> Self {
        self.state.process_exit_at = Some(at);
        self
    }

    /// Finishes the script.
    pub fn build(self) -> MockProc {
        MockProc {
            state: Mutex::new(self.state),
            coord: SleepCoord::default(),
        }
    }
}

impl ProcSource for MockProc {
    fn list_tids(&self, pid: i32) -> Result<Vec<i32>, ProcError> {
        let mut s = self.state.lock();
        if s.list_io_errors > 0 {
            s.list_io_errors -= 1;
            return Err(ProcError::Io(io::ErrorKind::Interrupted));
        }
        if pid != s.pid || !s.process_alive_at(s.now) {
            return Err(ProcError::Vanished);
        }
        let now = s.now;
        Ok(s.threads
            .iter()
            .filter(|(_, t)| t.alive_at(now))
            .map(|(tid, _)| *tid)
            .collect())
    }

    fn thread_cpu_time(&self, pid: i32, tid: i32) -> Result<ThreadTimes, ProcError> {
        let mut s = self.state.lock();
        if pid != s.pid || !s.process_alive_at(s.now) {
            return Err(ProcError::Vanished);
        }
        let now = s.now;
        let Some(t) = s.threads.get_mut(&tid) else {
            return Err(ProcError::Vanished);
        };
        if !t.alive_at(now) {
            return Err(ProcError::Vanished);
        }
        if t.vanish_reads > 0 {
            t.vanish_reads -= 1;
            return Err(ProcError::Vanished);
        }
        if t.malformed_reads > 0 {
            t.malformed_reads -= 1;
            return Err(ProcError::Malformed("scripted torn stat read".into()));
        }
        if t.io_reads > 0 {
            t.io_reads -= 1;
            return Err(ProcError::Io(io::ErrorKind::Interrupted));
        }
        Ok(ThreadTimes {
            utime: t.exec,
            stime: Duration::ZERO,
        })
    }

    fn pin_to_cpu(&self, tid: i32, cpu: usize) -> Result<(), ProcError> {
        let mut s = self.state.lock();
        if cpu >= s.n_cpus {
            return Err(ProcError::Io(io::ErrorKind::InvalidInput));
        }
        if !s.process_alive_at(s.now) {
            return Err(ProcError::Vanished);
        }
        if s.eperm_all_pins > 0 {
            s.eperm_all_pins -= 1;
            return Err(ProcError::PermissionDenied);
        }
        let now = s.now;
        let Some(t) = s.threads.get_mut(&tid) else {
            return Err(ProcError::Vanished);
        };
        if !t.alive_at(now) {
            return Err(ProcError::Vanished);
        }
        if t.eperm_forever {
            return Err(ProcError::PermissionDenied);
        }
        if t.eperm_pins > 0 {
            t.eperm_pins -= 1;
            return Err(ProcError::PermissionDenied);
        }
        t.cpu = cpu;
        Ok(())
    }

    fn process_alive(&self, pid: i32) -> bool {
        let s = self.state.lock();
        pid == s.pid && s.process_alive_at(s.now)
    }

    fn now(&self) -> Duration {
        self.state.lock().now
    }

    fn sleep(&self, d: Duration) {
        let wake_at = self.state.lock().now + d;
        let mut c = self.coord.inner.lock().expect("sleep coordinator poisoned");
        if c.workers == 0 {
            // No concurrent balancer loops: plain discrete-event advance.
            drop(c);
            self.state.lock().advance(d);
            self.coord.cv.notify_all();
            return;
        }
        let token = c.next_token;
        c.next_token += 1;
        c.sleepers.push((token, wake_at));
        // This push may have just made "every worker is asleep" true for
        // a waiter holding an earlier deadline — wake them to re-check.
        self.coord.cv.notify_all();
        loop {
            if self.state.lock().now >= wake_at {
                c.sleepers.retain(|(t, _)| *t != token);
                self.coord.cv.notify_all();
                return;
            }
            // Advance only from the earliest pending deadline, and only
            // once every registered worker has reached its sleep — a busy
            // worker freezes the clock rather than falling behind it.
            if c.sleepers.len() >= c.workers {
                let earliest = c
                    .sleepers
                    .iter()
                    .min_by_key(|(t, w)| (*w, *t))
                    .map(|(t, _)| *t);
                if earliest == Some(token) {
                    c.sleepers.retain(|(t, _)| *t != token);
                    let mut s = self.state.lock();
                    let delta = wake_at.saturating_sub(s.now);
                    s.advance(delta);
                    drop(s);
                    self.coord.cv.notify_all();
                    return;
                }
            }
            c = self.coord.cv.wait(c).expect("sleep coordinator poisoned");
        }
    }

    fn worker_started(&self) {
        let mut c = self.coord.inner.lock().expect("sleep coordinator poisoned");
        c.workers += 1;
    }

    fn worker_stopped(&self) {
        let mut c = self.coord.inner.lock().expect("sleep coordinator poisoned");
        c.workers = c.workers.saturating_sub(1);
        // A departing worker may leave "everyone asleep" newly true.
        self.coord.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn fair_share_accrual() {
        let mock = MockProc::builder(7, 2)
            .thread(10)
            .thread(11)
            .thread(12)
            .build();
        // All three start on cpu 0: each gets 1/3 of a core.
        mock.sleep(ms(300));
        assert_eq!(mock.thread_exec(10), Some(ms(100)));
        // Move one to cpu 1: it runs alone at full speed, the others at 1/2.
        mock.pin_to_cpu(12, 1).unwrap();
        mock.sleep(ms(100));
        assert_eq!(mock.thread_exec(12), Some(ms(200)));
        assert_eq!(mock.thread_exec(10), Some(ms(150)));
    }

    #[test]
    fn scripted_lifetimes_and_boundaries() {
        let mock = MockProc::builder(7, 1)
            .thread(1)
            .thread_spanning(2, ms(50), Some(ms(150)))
            .build();
        assert_eq!(mock.list_tids(7).unwrap(), vec![1]);
        // Advance across the spawn boundary in one big sleep: accrual must
        // split at t=50ms (thread 1 alone) and t in [50,150] (shared).
        mock.sleep(ms(200));
        assert_eq!(mock.list_tids(7).unwrap(), vec![1]);
        assert_eq!(mock.thread_exec(1), Some(ms(50 + 50 + 50)));
        assert_eq!(mock.thread_exec(2), Some(ms(50)));
        assert_eq!(mock.thread_cpu_time(7, 2).unwrap_err(), ProcError::Vanished);
    }

    #[test]
    fn fault_scripts_fire_and_drain() {
        let mock = MockProc::builder(7, 2).thread(1).build();
        mock.inject(1, Fault::MalformedReads(1));
        mock.inject(1, Fault::VanishReads(1));
        // Vanish first (checked before malformed), then malformed, then ok.
        assert_eq!(mock.thread_cpu_time(7, 1).unwrap_err(), ProcError::Vanished);
        assert!(matches!(
            mock.thread_cpu_time(7, 1).unwrap_err(),
            ProcError::Malformed(_)
        ));
        assert!(mock.thread_cpu_time(7, 1).is_ok());

        mock.inject(1, Fault::EpermPins(2));
        assert_eq!(
            mock.pin_to_cpu(1, 1).unwrap_err(),
            ProcError::PermissionDenied
        );
        assert_eq!(
            mock.pin_to_cpu(1, 1).unwrap_err(),
            ProcError::PermissionDenied
        );
        assert!(mock.pin_to_cpu(1, 1).is_ok());
        assert_eq!(mock.thread_cpu(1), Some(1));
    }

    #[test]
    fn global_faults_and_process_exit() {
        let mock = MockProc::builder(7, 2)
            .thread(1)
            .process_exits_at(ms(100))
            .build();
        mock.inject_global(GlobalFault::ListIoErrors(1));
        assert!(matches!(mock.list_tids(7).unwrap_err(), ProcError::Io(_)));
        assert!(mock.list_tids(7).is_ok());
        mock.inject_global(GlobalFault::EpermAllPins(1));
        assert_eq!(
            mock.pin_to_cpu(1, 0).unwrap_err(),
            ProcError::PermissionDenied
        );
        assert!(mock.process_alive(7));
        mock.sleep(ms(100));
        assert!(!mock.process_alive(7));
        assert_eq!(mock.list_tids(7).unwrap_err(), ProcError::Vanished);
        // The clock still advances after death (balancer threads keep
        // sleeping while they notice).
        mock.sleep(ms(50));
        assert_eq!(mock.virtual_now(), ms(150));
        // No CPU accrues post-mortem.
        assert_eq!(mock.thread_exec(1), Some(ms(100)));
    }

    #[test]
    fn runtime_churn() {
        let mock = MockProc::builder(7, 2).thread(1).build();
        mock.sleep(ms(10));
        mock.spawn_thread(2);
        assert_eq!(mock.list_tids(7).unwrap(), vec![1, 2]);
        mock.exit_thread(1);
        assert_eq!(mock.list_tids(7).unwrap(), vec![2]);
        assert_eq!(mock.thread_cpu_time(7, 1).unwrap_err(), ProcError::Vanished);
    }
}
