//! `/proc` thread discovery and CPU-time accounting.
//!
//! The paper's implementation "inspects the /proc file system to determine
//! the process identifiers (PIDs) of all the threads in the parallel
//! application" and needs "the elapsed system and user times for every
//! thread being monitored". We take both from procfs: thread ids from
//! `/proc/<pid>/task/`, utime+stime from field 14+15 of
//! `/proc/<pid>/task/<tid>/stat`.
//!
//! Everything here returns a typed [`ProcError`] — procfs is a surface
//! that races the balancer by design (threads exit between `readdir` and
//! `open`), so callers need to distinguish "gone for good" from "try
//! again" without string-matching errno text.

use crate::error::ProcError;
use std::fs;
use std::time::Duration;

/// CPU time consumed by one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadTimes {
    /// User-mode time.
    pub utime: Duration,
    /// Kernel-mode time.
    pub stime: Duration,
}

impl ThreadTimes {
    /// Total CPU time (`t_exec` in the speed definition).
    ///
    /// # Examples
    ///
    /// ```
    /// use speedbal_native::proc::ThreadTimes;
    /// use std::time::Duration;
    ///
    /// let t = ThreadTimes {
    ///     utime: Duration::from_millis(250),
    ///     stime: Duration::from_millis(50),
    /// };
    /// assert_eq!(t.total(), Duration::from_millis(300));
    /// ```
    pub fn total(&self) -> Duration {
        self.utime + self.stime
    }
}

/// Clock ticks per second (`sysconf(_SC_CLK_TCK)`).
pub fn clock_ticks_per_sec() -> u64 {
    // SAFETY: sysconf is async-signal-safe and has no memory arguments.
    let hz = unsafe { libc::sysconf(libc::_SC_CLK_TCK) };
    if hz <= 0 {
        100
    } else {
        hz as u64
    }
}

/// Lists the thread ids of a process (including the main thread). Threads
/// that exit mid-scan are simply absent — callers must tolerate churn, as
/// the paper notes ("due to delays in updating the system logs" it polls
/// with a start-up delay).
pub fn list_tids(pid: i32) -> Result<Vec<i32>, ProcError> {
    let dir = format!("/proc/{pid}/task");
    let mut tids = Vec::new();
    for entry in fs::read_dir(dir).map_err(|e| ProcError::from_io(&e))? {
        let entry = entry.map_err(|e| ProcError::from_io(&e))?;
        if let Some(name) = entry.file_name().to_str() {
            if let Ok(tid) = name.parse::<i32>() {
                tids.push(tid);
            }
        }
    }
    tids.sort_unstable();
    Ok(tids)
}

/// Parses the utime (14th) and stime (15th) fields out of a
/// `/proc/.../stat` line. The command name (field 2) may itself contain
/// spaces and parentheses — even a trailing `)` — so fields are counted
/// after the **last** `)`; a line with no `)` at all, or one truncated
/// before the time fields, is reported as [`ProcError::Malformed`] rather
/// than panicking or silently misparsing.
///
/// # Examples
///
/// A well-formed line (fields 14/15 are `250` and `50` ticks, at 100 Hz):
///
/// ```
/// use speedbal_native::proc::parse_stat_times;
/// use std::time::Duration;
///
/// let stat = "1234 (worker) R 1 1 1 0 -1 4194304 103 0 0 0 250 50 0 0 20 0 1 0 5 27 3 1";
/// let t = parse_stat_times(stat, 100).unwrap();
/// assert_eq!(t.utime, Duration::from_millis(2500));
/// assert_eq!(t.stime, Duration::from_millis(500));
/// ```
///
/// Comm fields containing `)` do not shift the field count:
///
/// ```
/// use speedbal_native::proc::parse_stat_times;
/// use std::time::Duration;
///
/// let stat = "99 (a (evil) name) S 1 1 1 0 -1 0 0 0 0 0 100 200 0 0 20 0 1 0 0 0 0 0";
/// let t = parse_stat_times(stat, 100).unwrap();
/// assert_eq!(t.utime, Duration::from_secs(1));
/// assert_eq!(t.stime, Duration::from_secs(2));
/// ```
///
/// Truncated or garbage lines come back as a typed error:
///
/// ```
/// use speedbal_native::{proc::parse_stat_times, ProcError};
///
/// assert!(matches!(
///     parse_stat_times("1 (x) R 1 2", 100),
///     Err(ProcError::Malformed(_))
/// ));
/// assert!(matches!(
///     parse_stat_times("no parens at all", 100),
///     Err(ProcError::Malformed(_))
/// ));
/// ```
pub fn parse_stat_times(stat: &str, ticks_per_sec: u64) -> Result<ThreadTimes, ProcError> {
    let close = stat
        .rfind(')')
        .ok_or_else(|| ProcError::Malformed("stat line has no ')' after comm".into()))?;
    let after = &stat[close + 1..];
    let fields: Vec<&str> = after.split_whitespace().collect();
    // `after` starts at field 3 ("state"), so utime/stime (fields 14/15)
    // are at indices 11 and 12.
    let field = |i: usize| -> Result<u64, ProcError> {
        let raw = fields.get(i).ok_or_else(|| {
            ProcError::Malformed(format!(
                "stat line truncated: {} fields after comm, need {}",
                fields.len(),
                i + 1
            ))
        })?;
        raw.parse().map_err(|_| {
            ProcError::Malformed(format!("stat field {} is not a number: {raw:?}", i + 3))
        })
    };
    let utime_ticks = field(11)?;
    let stime_ticks = field(12)?;
    let to_dur = |ticks: u64| {
        Duration::from_nanos(ticks.saturating_mul(1_000_000_000 / ticks_per_sec.max(1)))
    };
    Ok(ThreadTimes {
        utime: to_dur(utime_ticks),
        stime: to_dur(stime_ticks),
    })
}

/// Reads the cumulative CPU time of one thread of one process.
pub fn read_thread_cpu_time(pid: i32, tid: i32) -> Result<ThreadTimes, ProcError> {
    let path = format!("/proc/{pid}/task/{tid}/stat");
    let stat = fs::read_to_string(&path).map_err(|e| ProcError::from_io(&e))?;
    parse_stat_times(&stat, clock_ticks_per_sec())
}

/// True iff the process is still alive **and running** — a zombie (exited
/// but not yet reaped by its parent) keeps its `/proc` entry, so existence
/// alone is not enough: a balancer looping on it would never terminate.
pub fn process_alive(pid: i32) -> bool {
    let Ok(stat) = fs::read_to_string(format!("/proc/{pid}/stat")) else {
        return false;
    };
    // State is the first field after the parenthesized command name.
    match stat[stat.rfind(')').map(|i| i + 1).unwrap_or(0)..]
        .split_whitespace()
        .next()
    {
        Some("Z") | None => false,
        Some(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_stat() {
        let stat = "1234 (worker) R 1 1 1 0 -1 4194304 103 0 0 0 250 50 0 0 20 0 1 0 538409 2703360 329 18446744073709551615 0 0 0 0 0 0 0 0 0 0 0 0 17 0 0 0 0 0 0 0";
        let t = parse_stat_times(stat, 100).unwrap();
        assert_eq!(t.utime, Duration::from_millis(2500));
        assert_eq!(t.stime, Duration::from_millis(500));
        assert_eq!(t.total(), Duration::from_secs(3));
    }

    #[test]
    fn parse_handles_evil_comm_names() {
        // Command names may contain spaces and parentheses.
        let stat = "99 (a (evil) name) S 1 1 1 0 -1 0 0 0 0 0 100 200 0 0 20 0 1 0 0 0 0 0";
        let t = parse_stat_times(stat, 100).unwrap();
        assert_eq!(t.utime, Duration::from_secs(1));
        assert_eq!(t.stime, Duration::from_secs(2));
    }

    #[test]
    fn parse_rejects_garbage_with_typed_errors() {
        assert!(matches!(
            parse_stat_times("not a stat line", 100),
            Err(ProcError::Malformed(_))
        ));
        assert!(matches!(
            parse_stat_times("1 (x) R 1 2", 100),
            Err(ProcError::Malformed(_))
        ));
        // Non-numeric where a counter should be.
        assert!(matches!(
            parse_stat_times(
                "9 (x) R 1 1 1 0 -1 0 0 0 0 0 abc 200 0 0 20 0 1 0 0 0 0 0",
                100
            ),
            Err(ProcError::Malformed(_))
        ));
        // A comm ending in ')' with nothing after it.
        assert!(matches!(
            parse_stat_times("9 (x))", 100),
            Err(ProcError::Malformed(_))
        ));
        assert!(matches!(
            parse_stat_times("", 100),
            Err(ProcError::Malformed(_))
        ));
    }

    #[test]
    fn missing_process_is_vanished() {
        assert_eq!(list_tids(-1).unwrap_err(), ProcError::Vanished);
        assert_eq!(
            read_thread_cpu_time(-1, -1).unwrap_err(),
            ProcError::Vanished
        );
    }

    #[test]
    fn own_process_is_discoverable() {
        let pid = std::process::id() as i32;
        let tids = list_tids(pid).expect("must read own /proc");
        assert!(!tids.is_empty());
        assert!(process_alive(pid));
        assert!(!process_alive(-1));
        // Reading our own main thread's times must succeed and be sane.
        let t = read_thread_cpu_time(pid, pid).expect("own stat");
        assert!(t.total() < Duration::from_secs(3600));
    }

    #[test]
    fn ticks_per_sec_is_positive() {
        let hz = clock_ticks_per_sec();
        assert!((1..=10_000).contains(&hz));
    }

    #[test]
    fn busy_thread_accumulates_time() {
        let pid = std::process::id() as i32;
        let before = read_thread_cpu_time(pid, unsafe { libc::gettid() }).unwrap();
        // Burn ~50 ms of CPU.
        let start = std::time::Instant::now();
        let mut x = 0u64;
        while start.elapsed() < Duration::from_millis(60) {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        std::hint::black_box(x);
        let after = read_thread_cpu_time(pid, unsafe { libc::gettid() }).unwrap();
        assert!(
            after.total() >= before.total(),
            "CPU time must be monotonic"
        );
    }
}
