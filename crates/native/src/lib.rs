//! The real user-level speed balancer for Linux — the deployable form of
//! the paper's `speedbalancer` program (§5.2).
//!
//! `speedbalancer` "is currently implemented as a stand-alone
//! multi-threaded program that runs in user space": it takes a target
//! process, discovers its threads through `/proc`, pins them round-robin
//! across the requested cores with `sched_setaffinity`, and then runs one
//! balancer thread per core. Each balancer periodically measures its
//! threads' speeds (`t_exec / t_real` from `/proc/<pid>/task/<tid>/stat`,
//! utime+stime), publishes the local core speed, and pulls one thread from
//! a core slower than `T_s ×` the global average — re-pinning it, so the
//! kernel's own balancer never interferes.
//!
//! # Fault model
//!
//! All OS access goes through the [`ProcSource`] trait ([`RealProc`] in
//! production, [`MockProc`] with scripted fault injection in tests), and
//! every fallible call returns a typed [`ProcError`]. The balancing loop
//! tolerates thread churn, torn stat reads, and `EPERM` affinity failures
//! by retrying transients with bounded backoff, quarantining persistently
//! sick threads, and letting data-less cores abstain from the global speed
//! average. See `DESIGN.md` §5c for the full model.
//!
//! Differences from the 2009 implementation, documented in DESIGN.md: we
//! read per-thread CPU time from `/proc/<pid>/task/<tid>/stat` instead of
//! the taskstats netlink socket (same utime+stime counters, no extra
//! privileges), and the scheduling-domain layout comes from
//! `/sys/devices/system/cpu` and `/sys/devices/system/node`.

#![warn(missing_docs)]

pub mod affinity;
pub mod balancer;
pub mod error;
pub mod mock;
pub mod proc;
pub mod source;
pub mod topo;

pub use affinity::{get_affinity, pin_to_cpu, set_affinity};
pub use balancer::{NativeConfig, NativeSpeedBalancer, NativeStats};
pub use error::ProcError;
pub use mock::{Fault, GlobalFault, MockProc, MockProcBuilder};
pub use proc::{list_tids, read_thread_cpu_time, ThreadTimes};
pub use source::{ProcSource, RealProc};
pub use topo::{online_cpus, NativeTopology};
