//! The real user-level speed balancer for Linux — the deployable form of
//! the paper's `speedbalancer` program (§5.2).
//!
//! `speedbalancer` "is currently implemented as a stand-alone
//! multi-threaded program that runs in user space": it takes a target
//! process, discovers its threads through `/proc`, pins them round-robin
//! across the requested cores with `sched_setaffinity`, and then runs one
//! balancer thread per core. Each balancer periodically measures its
//! threads' speeds (`t_exec / t_real` from `/proc/<pid>/task/<tid>/stat`,
//! utime+stime), publishes the local core speed, and pulls one thread from
//! a core slower than `T_s ×` the global average — re-pinning it, so the
//! kernel's own balancer never interferes.
//!
//! Differences from the 2009 implementation, documented in DESIGN.md: we
//! read per-thread CPU time from `/proc/<pid>/task/<tid>/stat` instead of
//! the taskstats netlink socket (same utime+stime counters, no extra
//! privileges), and the scheduling-domain layout comes from
//! `/sys/devices/system/cpu` and `/sys/devices/system/node`.

pub mod affinity;
pub mod balancer;
pub mod proc;
pub mod topo;

pub use affinity::{get_affinity, pin_to_cpu, set_affinity};
pub use balancer::{NativeConfig, NativeSpeedBalancer, NativeStats};
pub use proc::{list_tids, read_thread_cpu_time, ThreadTimes};
pub use topo::{online_cpus, NativeTopology};
