//! Offline stub for `serde`.
//!
//! The container image has no network access and no crates.io cache, so the
//! workspace vendors a minimal `serde` facade: the `Serialize` /
//! `Deserialize` derive macros expand to nothing and the traits are empty
//! markers. All `#[derive(Serialize, Deserialize)]` annotations in the
//! workspace stay exactly as they would be against the real crate, so
//! swapping the real `serde` back in is a one-line workspace change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
