//! Offline stub for `libc`: hand-written bindings for exactly the Linux
//! glibc symbols the `speedbal-native` crate uses. Layouts and constants
//! match glibc on x86-64/aarch64 Linux (the only supported targets of the
//! native balancer).

#![allow(non_camel_case_types, non_snake_case)]

pub type c_int = i32;
pub type c_long = i64;
pub type pid_t = i32;
pub type size_t = usize;

/// `CPU_SETSIZE` bits in a `cpu_set_t` (glibc: 1024).
pub const CPU_SETSIZE: c_int = 1024;

/// `_SC_CLK_TCK` for `sysconf` (Linux: 2).
pub const _SC_CLK_TCK: c_int = 2;

/// `SIGKILL`.
pub const SIGKILL: c_int = 9;

/// `EPERM`: operation not permitted.
pub const EPERM: c_int = 1;

/// `ENOENT`: no such file or directory.
pub const ENOENT: c_int = 2;

/// `ESRCH`: no such process.
pub const ESRCH: c_int = 3;

/// `EACCES`: permission denied.
pub const EACCES: c_int = 13;

const ULONG_BITS: usize = usize::BITS as usize;

/// glibc's `cpu_set_t`: a 1024-bit mask of `unsigned long`s.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct cpu_set_t {
    bits: [usize; CPU_SETSIZE as usize / ULONG_BITS],
}

/// `CPU_SET(3)`.
///
/// # Safety
/// Safe in practice; marked unsafe to mirror the real crate's signature.
pub unsafe fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
    if cpu < CPU_SETSIZE as usize {
        set.bits[cpu / ULONG_BITS] |= 1 << (cpu % ULONG_BITS);
    }
}

/// `CPU_ISSET(3)`.
///
/// # Safety
/// Safe in practice; marked unsafe to mirror the real crate's signature.
pub unsafe fn CPU_ISSET(cpu: usize, set: &cpu_set_t) -> bool {
    cpu < CPU_SETSIZE as usize && set.bits[cpu / ULONG_BITS] & (1 << (cpu % ULONG_BITS)) != 0
}

extern "C" {
    pub fn sched_getaffinity(pid: pid_t, cpusetsize: size_t, mask: *mut cpu_set_t) -> c_int;
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, mask: *const cpu_set_t) -> c_int;
    pub fn sched_getcpu() -> c_int;
    pub fn gettid() -> pid_t;
    pub fn sysconf(name: c_int) -> c_long;
    pub fn kill(pid: pid_t, sig: c_int) -> c_int;
}
