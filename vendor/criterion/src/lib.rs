//! Offline stub for `criterion`.
//!
//! Runs each registered benchmark body a small fixed number of times and
//! reports wall-clock means on stdout — enough to keep `cargo bench`
//! compiling and producing useful smoke numbers without the real crate's
//! statistics engine. The API surface mirrors the subset the workspace's
//! benches use.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many iterations of `Bencher::iter` one measurement performs.
const ITERS: u32 = 10;

/// Measures a single benchmark body.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Throughput annotation (recorded but unused by the stub).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: ITERS,
        };
        f(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / f64::from(b.iters.max(1));
        println!("bench {name:60} {:>12.3} ms/iter", per_iter * 1e3);
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        Self::run_one(name, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        Criterion::run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        Criterion::run_one(&format!("{}/{}", self.name, id), &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Registers benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running every registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
