//! Offline stub for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as an
//! annotation (nothing serializes at runtime in the offline build), so the
//! derives expand to nothing. Swap in the real `serde` to restore full
//! serialization support — no call sites need to change.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
