//! Offline stub for `proptest`.
//!
//! A deterministic mini property-testing harness exposing the subset of the
//! real `proptest` surface this workspace uses: the `proptest!` macro,
//! `prop_assert*` / `prop_assume!`, range and tuple strategies, `Just`,
//! `prop_oneof!`, `any::<bool>()`, `collection::vec`, and `prop_map`.
//!
//! Differences from the real crate, by design of a stub:
//! * cases are sampled from a fixed per-test RNG seed (derived from the
//!   test name), so runs are fully reproducible but never shrink;
//! * `prop_assume!` skips the offending case instead of resampling.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values for one test case.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (the real crate's `prop_map`).
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    macro_rules! int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    self.start + ((rng.next_u64() as u128 % span) as $t)
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    lo + ((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }
    int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let frac = rng.next_u64() as f64 / (u64::MAX as f64 + 1.0);
            self.start + frac * (self.end - self.start)
        }
    }

    impl Strategy for ::std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let frac = rng.next_u64() as f64 / u64::MAX as f64;
            self.start() + frac * (self.end() - self.start())
        }
    }

    /// Strategy for booleans (`any::<bool>()`).
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    use crate::strategy::AnyBool;

    /// Types with a canonical strategy (`any::<T>()`).
    pub trait Arbitrary {
        type Strategy: crate::strategy::Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy for `Vec`s with lengths drawn from `len` (the real
    /// crate's `proptest::collection::vec`).
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration; only `cases` is honoured by the stub.
    /// `max_shrink_iters` mirrors the real crate's field so callers can
    /// use struct-update syntax (`..ProptestConfig::default()`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 1024,
            }
        }
    }

    /// Deterministic splitmix64-based case RNG, seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        pub fn deterministic(name: &str) -> TestRng {
            let mut h = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(h | 1)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...)` block runs
/// `cases` times over freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let ($($arg,)*) = ($((&$strat).sample(&mut rng),)*);
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!("proptest {} failed on case {case}: {msg}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(, $($fmt:tt)*)?) => {
        match (&$a, &$b) {
            (lhs, rhs) => {
                if !(*lhs == *rhs) {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: {} == {} ({lhs:?} vs {rhs:?})",
                        stringify!($a),
                        stringify!($b)
                    ));
                }
            }
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($strat),)+];
        $crate::strategy::Union::new(options)
    }};
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}
