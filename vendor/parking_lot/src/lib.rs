//! Offline stub for `parking_lot`: wraps `std::sync::Mutex` behind the
//! non-poisoning `parking_lot::Mutex` API the workspace uses.

use std::sync::PoisonError;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Locks, ignoring poisoning (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}
